"""Integration suite for the compressed vector-store layer.

The contracts under test, per ISSUE 3's acceptance criteria:

* ``compression="none"`` is **bit-identical** to the historical dense
  pipeline — graph and exact paths, single-query and batched.
* Every backend serves the full lifecycle: build → search →
  insert/delete → seal/compact → save → load, with stable results
  across the persistence round-trip.
* ``refine=`` (two-stage exact rerank) never lowers recall against the
  full-precision ground truth — the candidate set is unchanged and the
  final ranking is by true similarity, so this is deterministic, not
  statistical.
* The per-modality fallback (zero index weight + query-time override)
  stays bit-identical under the executor for any ``n_jobs``.
* The lazy ``JointSpace`` caches respect the cap/guard satellite:
  ``drop_caches()`` releases them and ``REPRO_F64_CACHE_MB`` bounds the
  float64 scan cache.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.framework import MUST
from repro.core.multivector import MultiVectorSet
from repro.core.space import JointSpace
from repro.core.weights import Weights
from repro.index.flat import FlatIndex
from repro.index.segments import SegmentedIndex, SegmentPolicy
from repro.store import STORE_KINDS

from tests.conftest import random_multivector_set, random_query

N = 400
DIMS = (18, 8)
K = 10
L = 80
COMPRESSED = sorted(k for k in STORE_KINDS if k != "none")


@pytest.fixture(scope="module")
def objects():
    return random_multivector_set(N, DIMS, seed=21)


@pytest.fixture(scope="module")
def queries():
    return [random_query(DIMS, seed=100 + s) for s in range(10)]


@pytest.fixture(scope="module")
def dense_must(objects):
    return MUST(objects, weights=Weights([0.6, 0.4])).build()


@pytest.fixture(scope="module")
def ground_truth(dense_must, queries):
    return [dense_must.search(q, k=K, exact=True).ids for q in queries]


def _recall(ids, gt):
    return np.intersect1d(ids, gt).size / gt.size


class TestDenseBitIdentity:
    """``compression="none"`` must change nothing, to the last bit."""

    def test_graph_search_identical(self, objects, dense_must, queries):
        explicit = MUST(objects, weights=Weights([0.6, 0.4]),
                        compression="none").build()
        for q in queries:
            a = dense_must.search(q, k=K, l=L, rng=0)
            b = explicit.search(q, k=K, l=L, rng=0)
            assert np.array_equal(a.ids, b.ids)
            np.testing.assert_array_equal(a.similarities, b.similarities)

    def test_exact_and_batch_identical(self, objects, dense_must, queries):
        explicit = MUST(objects, weights=Weights([0.6, 0.4]),
                        compression="none").build()
        for q in queries[:4]:
            a = dense_must.search(q, k=K, exact=True)
            b = explicit.search(q, k=K, exact=True)
            assert np.array_equal(a.ids, b.ids)
            np.testing.assert_array_equal(a.similarities, b.similarities)
        ba = dense_must.batch_search(queries, k=K, l=L, n_jobs=2)
        bb = explicit.batch_search(queries, k=K, l=L, n_jobs=2)
        for ra, rb in zip(ba, bb):
            assert np.array_equal(ra.ids, rb.ids)
            np.testing.assert_array_equal(ra.similarities, rb.similarities)


@pytest.mark.parametrize("kind", COMPRESSED)
class TestCompressedSearch:
    def test_build_serves_from_compressed_store(self, objects, kind):
        must = MUST(objects, weights=Weights([0.6, 0.4]),
                    compression=kind).build()
        store = must.index.space.store
        assert store.kind == kind
        assert must.index.space.is_compressed
        # Hot tier shrinks; the exact corpus remains the cold tier.
        dense_bytes = sum(m.nbytes for m in objects.matrices)
        assert store.hot_bytes() < dense_bytes
        assert store.has_exact

    def test_exact_path_stays_full_precision(self, objects, dense_must,
                                             queries, kind):
        """``exact=True`` on a non-segmented instance is the MUST--
        reference: it scans the original float32 corpus, untouched by
        compression."""
        must = MUST(objects, weights=Weights([0.6, 0.4]),
                    compression=kind).build()
        for q in queries[:4]:
            a = dense_must.search(q, k=K, exact=True)
            b = must.search(q, k=K, exact=True)
            assert np.array_equal(a.ids, b.ids)
            np.testing.assert_array_equal(a.similarities, b.similarities)

    def test_refine_never_lowers_recall(self, objects, queries,
                                        ground_truth, kind):
        """Deterministic monotonicity: with the same ``l`` the routing
        (hence the candidate set) is identical, and the exact rerank
        keeps every ground-truth member the candidates contain."""
        must = MUST(objects, weights=Weights([0.6, 0.4]),
                    compression=kind).build()
        refine = 4
        assert L >= refine * K  # same routing for both calls
        for q, gt in zip(queries, ground_truth):
            plain = must.search(q, k=K, l=L, rng=0)
            refined = must.search(q, k=K, l=L, rng=0, refine=refine)
            assert _recall(refined.ids, gt) >= _recall(plain.ids, gt)
            assert refined.stats.reranked == refine * K

    def test_refine_similarities_are_exact(self, objects, dense_must,
                                           queries, kind):
        """Reranked similarities come from the cold tier: any id the
        refined result shares with exact search carries (almost) the
        exact joint similarity, not the quantised one."""
        must = MUST(objects, weights=Weights([0.6, 0.4]),
                    compression=kind).build()
        q = queries[0]
        refined = must.search(q, k=K, l=L, rng=0, refine=4)
        exact = dense_must.search(q, k=N, exact=True)
        lookup = dict(zip(exact.ids.tolist(), exact.similarities))
        for i, s in zip(refined.ids, refined.similarities):
            assert abs(s - lookup[int(i)]) < 1e-5

    def test_batch_parity_any_n_jobs(self, objects, queries, kind):
        must = MUST(objects, weights=Weights([0.6, 0.4]),
                    compression=kind).build()
        seq = must.batch_search(queries, k=K, l=L, refine=3, n_jobs=1)
        par = must.batch_search(queries, k=K, l=L, refine=3, n_jobs=4)
        for a, b in zip(seq, par):
            assert np.array_equal(a.ids, b.ids)
            np.testing.assert_array_equal(a.similarities, b.similarities)

    def test_flat_refine_recovers_exact_ranks(self, objects, dense_must,
                                              queries, kind):
        """A compressed flat scan + sufficient rerank equals exact
        search: the quantised scan only pre-ranks, the cold tier
        decides."""
        from repro.store import make_store

        store = make_store(kind, list(objects.matrices))
        flat = FlatIndex(
            JointSpace(MultiVectorSet.from_store(store), Weights([0.6, 0.4]))
        )
        for q in queries[:4]:
            ref = dense_must.search(q, k=K, exact=True)
            res = flat.search(q, k=K, refine=N // K)  # rerank everything
            assert np.array_equal(res.ids, ref.ids)


@pytest.mark.parametrize("kind", COMPRESSED)
class TestCompressedLifecycle:
    def _streaming_must(self, objects, kind):
        must = MUST(
            objects,
            weights=Weights([0.6, 0.4]),
            compression=kind,
            segment_policy=SegmentPolicy(seal_size=48, max_segments=3),
        ).build()
        extra = random_multivector_set(120, DIMS, seed=77)
        ids = must.insert(extra)
        must.mark_deleted(ids[:17])
        # A second, small insert stays in the (always-dense) delta so
        # the lifecycle covers mixed compressed/dense segment layouts.
        must.insert(random_multivector_set(20, DIMS, seed=78))
        return must

    def test_insert_delete_compact(self, objects, queries, kind):
        must = self._streaming_must(objects, kind)
        before = must.search(queries[0], k=K, l=L, refine=3, rng=0)
        assert before.ids.size == K
        must.compact()
        seg = must.segments.sealed[0]
        assert seg.space.store.kind == kind
        # Compaction rebuilt from the exact cold tier: stored exact rows
        # equal the original float32 vectors for the surviving corpus rows.
        alive = seg.ext_ids[seg.ext_ids < N]
        np.testing.assert_array_equal(
            seg.space.vectors.exact_modality(0)[: alive.size],
            objects.matrices[0][alive],
        )
        after = must.search(queries[0], k=K, l=L, refine=3, rng=0)
        assert after.ids.size == K

    def test_save_load_roundtrip(self, objects, queries, kind, tmp_path):
        must = self._streaming_must(objects, kind)
        path = tmp_path / "idx"
        must.save_index(path)
        fresh = MUST(objects, weights=Weights([0.6, 0.4])).load_index(path)
        assert fresh.segments.compression == kind
        for seg in fresh.segments.searchable_segments():
            expected = kind if seg.kind == "sealed" else "none"
            assert seg.space.store.kind == expected
        for q in queries[:5]:
            a = must.search(q, k=K, l=L, refine=3, rng=0)
            b = fresh.search(q, k=K, l=L, refine=3, rng=0)
            assert np.array_equal(a.ids, b.ids)
            np.testing.assert_array_equal(a.similarities, b.similarities)

    def test_single_graph_roundtrip(self, objects, queries, kind, tmp_path):
        must = MUST(objects, weights=Weights([0.6, 0.4]),
                    compression=kind).build()
        path = tmp_path / "graph.npz"
        must.save_index(path)
        fresh = MUST(objects).load_index(path)
        assert fresh.compression == kind
        assert fresh.index.space.store.kind == kind
        for q in queries[:5]:
            a = must.search(q, k=K, l=L, refine=3, rng=0)
            b = fresh.search(q, k=K, l=L, refine=3, rng=0)
            assert np.array_equal(a.ids, b.ids)


class TestZeroWeightFallbackUnderExecutor:
    """Scorer per-modality fallback (zero index weight + override that
    needs the zeroed modality) must be bit-identical across n_jobs and
    match the single-query route — graph and exact paths."""

    @pytest.fixture(scope="class")
    def zero_must(self, objects):
        return MUST(objects, weights=Weights([1.0, 0.0])).build()

    @pytest.fixture(scope="class")
    def override(self):
        return Weights([0.5, 0.5])

    def test_graph_parity(self, zero_must, queries, override):
        seq = zero_must.batch_search(
            queries, k=K, l=L, weights=override, n_jobs=1, rng=5
        )
        par = zero_must.batch_search(
            queries, k=K, l=L, weights=override, n_jobs=4, rng=5
        )
        assert seq.stats.joint_evals == par.stats.joint_evals
        for a, b in zip(seq, par):
            assert np.array_equal(a.ids, b.ids)
            np.testing.assert_array_equal(a.similarities, b.similarities)

    def test_exact_parity(self, zero_must, queries, override):
        seq = zero_must.batch_search(
            queries, k=K, weights=override, exact=True, n_jobs=1
        )
        par = zero_must.batch_search(
            queries, k=K, weights=override, exact=True, n_jobs=4
        )
        for a, b, q in zip(seq, par, queries):
            assert np.array_equal(a.ids, b.ids)
            single = zero_must.search(q, k=K, weights=override, exact=True)
            assert np.array_equal(a.ids, single.ids)
            np.testing.assert_allclose(
                a.similarities, single.similarities, rtol=1e-5, atol=1e-6
            )


class TestCacheGuards:
    """Satellite: the lazy float64 scan cache is capped and releasable."""

    def _space(self, n=64):
        objects = random_multivector_set(n, DIMS, seed=3)
        return JointSpace(objects, Weights([0.5, 0.5]))

    def test_f64_cache_kept_under_cap(self):
        space = self._space()
        q = random_query(DIMS, seed=9)
        space.query_ids_stable(q)
        assert space._f64 is not None

    def test_f64_cache_skipped_over_cap(self, monkeypatch):
        monkeypatch.setenv("REPRO_F64_CACHE_MB", "0")
        space = self._space()
        q = random_query(DIMS, seed=9)
        sims = space.query_ids_stable(q)
        assert space._f64 is None  # computed, not pinned
        monkeypatch.delenv("REPRO_F64_CACHE_MB")
        np.testing.assert_array_equal(sims, space.query_ids_stable(q))

    def test_drop_caches_releases_both(self):
        space = self._space()
        q = random_query(DIMS, seed=9)
        space.query_ids_stable(q)
        space.concatenated
        assert space._f64 is not None and space._concat is not None
        space.drop_caches()
        assert space._f64 is None and space._concat is None

    def test_compact_drops_framework_caches(self):
        objects = random_multivector_set(120, DIMS, seed=31)
        must = MUST(objects, weights=Weights([0.5, 0.5])).build()
        must.index.mark_deleted(np.arange(10))
        must.space.query_ids_stable(random_query(DIMS, seed=2))
        assert must.space._f64 is not None
        must.compact()
        assert must.space._f64 is None

    def test_compressed_space_never_pins_f64(self):
        objects = random_multivector_set(64, DIMS, seed=3)
        must = MUST(objects, compression="int8").build()
        space = must.index.space
        space.query_ids_stable(random_query(DIMS, seed=9))
        assert space._f64 is None


class TestManifestFormat:
    """Satellite: explicit format/version validation on load."""

    def _saved(self, objects, tmp_path, compression="none"):
        must = MUST(
            objects,
            weights=Weights([0.6, 0.4]),
            compression=compression,
            segment_policy=SegmentPolicy(seal_size=48),
        ).build()
        must.insert(random_multivector_set(60, DIMS, seed=55))
        path = tmp_path / "idx"
        must.save_index(path)
        return path

    def test_manifest_declares_version_and_stores(self, objects, tmp_path):
        import json

        path = self._saved(objects, tmp_path, compression="int8")
        manifest = json.loads((path / "manifest.json").read_text())
        assert manifest["format"] == "must-segments-v2"
        assert manifest["format_version"] == 2
        assert manifest["compression"] == "int8"

    def test_unknown_format_raises_actionable_error(self, objects, tmp_path):
        import json

        path = self._saved(objects, tmp_path)
        mf = path / "manifest.json"
        manifest = json.loads(mf.read_text())
        manifest["format"] = "must-segments-v99"
        manifest["format_version"] = 99
        mf.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="newer library version"):
            SegmentedIndex.load(path)

    def test_v1_manifest_still_loads(self, objects, tmp_path):
        """Archives written before the store layer carry the v1 format
        string and no store metadata — they load as dense float32."""
        import json

        path = self._saved(objects, tmp_path)
        mf = path / "manifest.json"
        manifest = json.loads(mf.read_text())
        manifest["format"] = "must-segments-v1"
        for key in ("format_version", "compression", "store_options"):
            manifest.pop(key)
        mf.write_text(json.dumps(manifest))
        loaded = SegmentedIndex.load(path)
        assert loaded.compression == "none"
        assert all(
            not seg.space.is_compressed
            for seg in loaded.searchable_segments()
        )

    def test_single_graph_roundtrip_preserves_store_options(
        self, objects, tmp_path
    ):
        """Reload must re-derive the *same* serving store: kind AND codec
        options (a retrain with defaults would silently serve different
        codes than the index was benchmarked with)."""
        opts = {"pq_dims": 8, "seed": 3, "keep_exact": False}
        must = MUST(objects, weights=Weights([0.6, 0.4]),
                    compression="pq", store_options=opts).build()
        path = tmp_path / "graph.npz"
        must.save_index(path)
        fresh = MUST(objects).load_index(path)
        assert fresh.store_options == opts
        a, b = fresh.index.space.store, must.index.space.store
        assert a.hot_bytes() == b.hot_bytes()
        assert a.cold_bytes() == b.cold_bytes() == 0
        q = random_query(DIMS, seed=4).vectors[0]
        np.testing.assert_array_equal(
            a.query_kernel(0, q).all(), b.query_kernel(0, q).all()
        )

    def test_unknown_store_kind_raises_actionable_error(self, objects):
        mats = [m[:10] for m in objects.matrices]
        from repro.index.segments import SegmentedIndex as SI

        with pytest.raises(ValueError, match="only supports"):
            SI._load_vectors(
                {"store": {"kind": "rotational-pq", "dtype": "uint8"},
                 "num_modalities": 2},
                {f"mod_{i}": m for i, m in enumerate(mats)},
            )
