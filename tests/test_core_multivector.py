"""Unit tests for the multi-vector column store and MultiVector."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.multivector import MultiVector, MultiVectorSet, normalize_rows

from tests.conftest import random_multivector_set


class TestNormalizeRows:
    def test_unit_norms(self):
        mat = normalize_rows(np.random.default_rng(0).standard_normal((5, 4)))
        assert np.allclose(np.linalg.norm(mat, axis=1), 1.0, atol=1e-5)

    def test_zero_row_preserved(self):
        mat = normalize_rows(np.array([[0.0, 0.0], [3.0, 4.0]]))
        assert np.array_equal(mat[0], [0.0, 0.0])
        assert np.allclose(mat[1], [0.6, 0.8])

    @given(
        hnp.arrays(
            np.float64, (4, 6),
            elements=st.floats(-10, 10, allow_nan=False),
        )
    )
    def test_idempotent(self, mat):
        once = normalize_rows(mat)
        twice = normalize_rows(once)
        assert np.allclose(once, twice, atol=1e-5)


class TestMultiVector:
    def test_from_arrays_and_present(self):
        mv = MultiVector.from_arrays([np.ones(3, dtype=np.float32), None])
        assert mv.num_modalities == 2
        assert mv.present == (True, False)

    def test_replace_swaps_slot(self):
        mv = MultiVector.from_arrays([np.ones(3), np.ones(2)])
        out = mv.replace(0, None)
        assert out.present == (False, True)
        assert mv.present == (True, True)  # original untouched

    def test_replace_with_vector(self):
        mv = MultiVector.from_arrays([np.ones(3), None])
        out = mv.replace(1, np.zeros(2))
        assert out.present == (True, True)


class TestMultiVectorSet:
    def test_basic_shape_properties(self):
        mvs = random_multivector_set(10, (4, 6), seed=2)
        assert mvs.n == len(mvs) == 10
        assert mvs.num_modalities == 2
        assert mvs.dims == (4, 6)

    def test_row_returns_object_vectors(self):
        mvs = random_multivector_set(10, (4, 6), seed=2)
        row = mvs.row(3)
        assert np.array_equal(row.vectors[0], mvs.modality(0)[3])
        assert np.array_equal(row.vectors[1], mvs.modality(1)[3])

    def test_subset_keeps_order(self):
        mvs = random_multivector_set(10, (4,), seed=2)
        sub = mvs.subset(np.array([7, 2, 5]))
        assert sub.n == 3
        assert np.array_equal(sub.modality(0)[0], mvs.modality(0)[7])
        assert np.array_equal(sub.modality(0)[2], mvs.modality(0)[5])

    def test_concatenated_plain(self):
        mvs = random_multivector_set(5, (2, 3), seed=2)
        cat = mvs.concatenated()
        assert cat.shape == (5, 5)
        assert np.array_equal(cat[:, :2], mvs.modality(0))

    def test_concatenated_scaled(self):
        mvs = random_multivector_set(5, (2, 3), seed=2)
        cat = mvs.concatenated([2.0, 0.5])
        assert np.allclose(cat[:, :2], 2.0 * mvs.modality(0), atol=1e-6)
        assert np.allclose(cat[:, 2:], 0.5 * mvs.modality(1), atol=1e-6)

    def test_row_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="rows"):
            MultiVectorSet([np.zeros((3, 2)), np.zeros((4, 2))])

    def test_empty_modality_list_rejected(self):
        with pytest.raises(ValueError):
            MultiVectorSet([])

    def test_normalize_flag(self):
        raw = [np.full((4, 3), 2.0)]
        mvs = MultiVectorSet(raw, normalize=True)
        assert np.allclose(np.linalg.norm(mvs.modality(0), axis=1), 1.0)

    def test_concatenated_wrong_scale_count(self):
        mvs = random_multivector_set(5, (2, 3), seed=2)
        with pytest.raises(ValueError):
            mvs.concatenated([1.0])
