"""Tests for the joint similarity space — Lemma 1 and Lemma 4 invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.multivector import MultiVector
from repro.core.results import SearchStats
from repro.core.space import JointSpace
from repro.core.weights import Weights

from tests.conftest import random_multivector_set, random_query


@pytest.fixture(scope="module")
def space():
    return JointSpace(random_multivector_set(60, (8, 5), seed=9),
                      Weights([0.3, 0.7]))


class TestLemma1:
    """Joint IP of concatenated vectors = ω²-weighted sum of modal IPs."""

    def test_pair_matches_weighted_sum(self, space):
        mats = space.vectors.matrices
        w2 = space.weights.squared
        for i, j in [(0, 1), (5, 17), (30, 30)]:
            expected = sum(
                w2[m] * float(mats[m][i] @ mats[m][j])
                for m in range(len(mats))
            )
            assert space.pair(i, j) == pytest.approx(expected, abs=1e-5)

    def test_block_matches_pair(self, space):
        a = np.array([0, 3, 5])
        b = np.array([1, 2])
        blk = space.block(a, b)
        for ai, i in enumerate(a):
            for bj, j in enumerate(b):
                assert blk[ai, bj] == pytest.approx(space.pair(i, j), abs=1e-5)

    @settings(deadline=None, max_examples=25)
    @given(st.integers(0, 59), st.integers(0, 59),
           st.floats(0.05, 5.0), st.floats(0.05, 5.0))
    def test_lemma1_property(self, i, j, w0, w1):
        space = JointSpace(random_multivector_set(60, (8, 5), seed=9),
                           Weights([w0, w1]))
        mats = space.vectors.matrices
        expected = w0 * float(mats[0][i] @ mats[0][j]) + w1 * float(
            mats[1][i] @ mats[1][j]
        )
        assert space.pair(i, j) == pytest.approx(expected, rel=1e-4, abs=1e-5)

    def test_weight_mismatch_rejected(self):
        with pytest.raises(ValueError):
            JointSpace(random_multivector_set(5, (3, 3)), Weights([1.0]))


class TestQueryKernels:
    def test_query_all_matches_query_ids(self, space):
        q = random_query((8, 5), seed=4)
        full = space.query_all(q)
        ids = np.array([3, 10, 42])
        assert np.allclose(full[ids], space.query_ids(q, ids), atol=1e-6)

    def test_missing_modality_drops_term(self, space):
        q = random_query((8, 5), seed=4)
        q_partial = q.replace(1, None)
        got = space.query_all(q_partial)
        expected = 0.3 * (space.vectors.modality(0) @ q.vectors[0])
        assert np.allclose(got, expected, atol=1e-5)

    def test_weight_override(self, space):
        q = random_query((8, 5), seed=4)
        override = Weights([0.9, 0.1])
        got = space.query_all(q, weights=override)
        expected = 0.9 * (space.vectors.modality(0) @ q.vectors[0]) + 0.1 * (
            space.vectors.modality(1) @ q.vectors[1]
        )
        assert np.allclose(got, expected, atol=1e-5)

    def test_concat_query_fast_path_matches(self, space):
        q = random_query((8, 5), seed=4)
        qcat = space.concat_query(q)
        assert qcat is not None
        fast = (space.concatenated @ qcat).astype(np.float64)
        assert np.allclose(fast, space.query_all(q), atol=1e-4)

    def test_concat_query_with_override_matches(self, space):
        q = random_query((8, 5), seed=4)
        override = Weights([0.8, 0.2])
        qcat = space.concat_query(q, weights=override)
        fast = (space.concatenated @ qcat).astype(np.float64)
        assert np.allclose(fast, space.query_all(q, weights=override), atol=1e-4)

    def test_concat_query_missing_modality(self, space):
        q = random_query((8, 5), seed=4).replace(0, None)
        qcat = space.concat_query(q)
        fast = (space.concatenated @ qcat).astype(np.float64)
        assert np.allclose(fast, space.query_all(q), atol=1e-4)

    def test_stats_counting(self, space):
        q = random_query((8, 5), seed=4)
        stats = SearchStats()
        space.query_ids(q, np.arange(10), stats=stats)
        assert stats.joint_evals == 10
        assert stats.modality_evals == 20

    def test_centroid_id_in_range(self, space):
        c = space.centroid_id()
        assert 0 <= c < space.n

    def test_with_weights_shares_vectors(self, space):
        other = space.with_weights(Weights([0.5, 0.5]))
        assert other.vectors is space.vectors
        assert other.weights != space.weights


class TestLemma4EarlyStop:
    """Pruned evaluation is lossless: every exact value matches, every
    pruned object's true similarity is at or below the threshold."""

    def _check(self, space, q, ids, threshold):
        sims, exact = space.query_ids_early_stop(q, ids, threshold)
        truth = space.query_ids(q, ids)
        # Exact entries match the true similarity.
        assert np.allclose(sims[exact], truth[exact], atol=1e-5)
        # Pruned entries really are at/below the threshold (Lemma 4).
        assert np.all(truth[~exact] <= threshold + 1e-5)
        # The bound is an upper bound everywhere.
        assert np.all(sims >= truth - 1e-5)

    def test_low_threshold_everything_exact(self, space):
        q = random_query((8, 5), seed=4)
        sims, exact = space.query_ids_early_stop(
            q, np.arange(20), threshold=-10.0
        )
        assert exact.all()
        assert np.allclose(sims, space.query_ids(q, np.arange(20)), atol=1e-5)

    def test_high_threshold_prunes_everything_safely(self, space):
        q = random_query((8, 5), seed=4)
        self._check(space, q, np.arange(30), threshold=0.99)

    @settings(deadline=None, max_examples=30)
    @given(st.floats(-0.5, 1.0), st.integers(0, 100))
    def test_lemma4_property(self, threshold, qseed):
        space = JointSpace(random_multivector_set(40, (6, 4), seed=11),
                           Weights([0.45, 0.55]))
        q = random_query((6, 4), seed=qseed)
        self._check(space, q, np.arange(40), threshold)

    def test_stats_record_pruning(self, space):
        q = random_query((8, 5), seed=4)
        stats = SearchStats()
        space.query_ids_early_stop(q, np.arange(40), 0.95, stats=stats)
        assert stats.joint_evals == 40
        # Heavier modality scanned for all, lighter only for survivors.
        assert stats.modality_evals <= 80
        assert stats.pruned_early >= 0

    def test_missing_modality_early_stop(self, space):
        q = random_query((8, 5), seed=4).replace(1, None)
        sims, exact = space.query_ids_early_stop(q, np.arange(20), -5.0)
        truth = space.query_all(q)[:20]
        assert np.allclose(sims[exact], truth[exact], atol=1e-5)
