"""Unit tests for modality weights (Lemma 1 machinery)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.multivector import MultiVector
from repro.core.weights import Weights


class TestConstruction:
    def test_from_omegas_squares(self):
        w = Weights.from_omegas([0.5, 2.0])
        assert np.allclose(w.squared, [0.25, 4.0])

    def test_uniform_sums_to_one(self):
        w = Weights.uniform(4)
        assert w.total == pytest.approx(1.0)
        assert np.allclose(w.squared, 0.25)

    def test_user_defined_alias(self):
        w = Weights.user_defined([0.9, 0.1])
        assert np.allclose(w.squared, [0.9, 0.1])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Weights([-0.1, 0.5])

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            Weights([0.0, 0.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Weights([])

    def test_immutable(self):
        w = Weights([0.5, 0.5])
        with pytest.raises(ValueError):
            w.squared[0] = 1.0


class TestViews:
    def test_omegas_root(self):
        w = Weights([0.25, 4.0])
        assert np.allclose(w.omegas, [0.5, 2.0])

    def test_total(self):
        assert Weights([0.3, 0.7]).total == pytest.approx(1.0)
        assert Weights([2.0, 2.0]).total == pytest.approx(4.0)

    def test_normalized(self):
        w = Weights([2.0, 6.0]).normalized()
        assert np.allclose(w.squared, [0.25, 0.75])

    @given(st.lists(st.floats(0.01, 10), min_size=1, max_size=6))
    def test_normalized_preserves_ratio(self, values):
        w = Weights(values)
        n = w.normalized()
        assert n.total == pytest.approx(1.0)
        assert np.allclose(
            n.squared / n.squared.sum(), w.squared / w.squared.sum()
        )

    def test_equality_and_hash(self):
        assert Weights([0.5, 0.5]) == Weights([0.5, 0.5])
        assert Weights([0.5, 0.5]) != Weights([0.4, 0.6])
        assert hash(Weights([0.5, 0.5])) == hash(Weights([0.5, 0.5]))


class TestMasking:
    def test_masked_zeroes_missing_modalities(self):
        w = Weights([0.4, 0.6])
        q = MultiVector.from_arrays([np.ones(3, dtype=np.float32), None])
        masked = w.masked(q)
        assert masked.squared[1] == 0.0
        assert masked.squared[0] == pytest.approx(0.4)

    def test_masked_all_missing_rejected(self):
        w = Weights([0.4, 0.6])
        q = MultiVector((None, None))
        with pytest.raises(ValueError):
            w.masked(q)

    def test_masked_modality_count_mismatch(self):
        w = Weights([1.0])
        q = MultiVector.from_arrays([np.ones(2), np.ones(2)])
        with pytest.raises(ValueError):
            w.masked(q)
