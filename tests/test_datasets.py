"""Tests for dataset generators and the encoding step."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    EncoderCombo,
    encode_dataset,
    make_audiotext,
    make_celeba,
    make_celeba_plus,
    make_imagetext,
    make_largescale,
    make_mitstates,
    make_mscoco,
    make_shopping,
    split_queries,
)
from repro.datasets.largescale import encode_largescale


class TestSplitQueries:
    def test_partition_is_disjoint_and_complete(self):
        train, test = split_queries(100, 0.5, seed=0)
        assert np.intersect1d(train, test).size == 0
        assert np.union1d(train, test).size == 100

    def test_fraction_respected(self):
        train, test = split_queries(100, 0.3, seed=0)
        assert len(train) == 30 and len(test) == 70

    def test_deterministic(self):
        assert np.array_equal(
            split_queries(50, 0.5, seed=7)[0], split_queries(50, 0.5, seed=7)[0]
        )

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            split_queries(10, 1.5)


class TestMitStates:
    @pytest.fixture(scope="class")
    def sem(self):
        return make_mitstates(num_nouns=8, num_states=5, instances_per_pair=2,
                              num_queries=30, seed=3)

    def test_corpus_size(self, sem):
        assert sem.n == 8 * 5 * 2
        assert sem.num_modalities == 2
        assert sem.num_queries == 30

    def test_ground_truth_matches_query_semantics(self, sem):
        nouns = sem.extra["nouns"]
        states = sem.extra["states"]
        for qi in range(sem.num_queries):
            label = sem.query_labels[qi]
            # "refstate noun + 'change state to tgtstate'"
            tgt_state = label.split("change state to ")[1].rstrip("'")
            noun = label.split()[1]
            for gt in sem.ground_truth[qi]:
                assert sem.object_labels[gt] == f"{tgt_state} {noun}"

    def test_reference_shares_noun_not_state(self, sem):
        for qi in range(sem.num_queries):
            ref_label = sem.object_labels[sem.query_reference_ids[qi]]
            gt_label = sem.object_labels[sem.ground_truth[qi][0]]
            assert ref_label.split()[1] == gt_label.split()[1]  # noun
            assert ref_label.split()[0] != gt_label.split()[0]  # state

    def test_reference_never_in_ground_truth(self, sem):
        for qi in range(sem.num_queries):
            assert sem.query_reference_ids[qi] not in sem.ground_truth[qi]

    def test_latents_normalised(self, sem):
        for mat in sem.object_latents:
            assert np.allclose(np.linalg.norm(mat, axis=1), 1.0, atol=1e-8)

    def test_deterministic(self):
        a = make_mitstates(num_nouns=5, num_states=3, num_queries=5, seed=9)
        b = make_mitstates(num_nouns=5, num_states=3, num_queries=5, seed=9)
        assert np.array_equal(a.object_latents[0], b.object_latents[0])
        assert np.array_equal(a.query_reference_ids, b.query_reference_ids)

    def test_seed_changes_content(self):
        a = make_mitstates(num_nouns=5, num_states=3, num_queries=5, seed=1)
        b = make_mitstates(num_nouns=5, num_states=3, num_queries=5, seed=2)
        assert not np.allclose(a.object_latents[0], b.object_latents[0])


class TestCeleba:
    @pytest.fixture(scope="class")
    def sem(self):
        return make_celeba(num_identities=20, variants_per_identity=3,
                           num_attributes=4, num_queries=25, seed=4)

    def test_corpus_size(self, sem):
        assert sem.n == 60
        assert sem.num_modalities == 2

    def test_gt_same_identity_as_reference(self, sem):
        identity_of = sem.extra["identity_of"]
        for qi in range(sem.num_queries):
            ref = sem.query_reference_ids[qi]
            gt = sem.ground_truth[qi][0]
            assert identity_of[ref] == identity_of[gt]
            assert ref != gt

    def test_celeba_plus_modalities(self):
        for m in (2, 3, 4):
            sem = make_celeba_plus(num_modalities=m, num_identities=10,
                                   num_queries=5, seed=1)
            assert sem.num_modalities == m
            assert len(sem.query_aux_latents) == m - 1

    def test_celeba_plus_bad_m(self):
        with pytest.raises(ValueError):
            make_celeba_plus(num_modalities=5)


class TestShopping:
    @pytest.fixture(scope="class")
    def sem(self):
        return make_shopping(query_category="t-shirt", num_colors=4,
                             num_fabrics=3, num_patterns=3,
                             instances_per_combo=1, num_queries=20, seed=5)

    def test_corpus_covers_all_categories(self, sem):
        labels = " ".join(sem.object_labels)
        for cat in ("t-shirt", "bottoms", "dress", "jacket"):
            assert cat in labels

    def test_gt_within_query_category(self, sem):
        for qi in range(sem.num_queries):
            for gt in sem.ground_truth[qi]:
                assert sem.object_labels[gt].startswith("t-shirt")

    def test_gt_attributes_differ_from_reference(self, sem):
        for qi in range(sem.num_queries):
            ref = sem.object_labels[sem.query_reference_ids[qi]]
            gt = sem.object_labels[sem.ground_truth[qi][0]]
            assert ref != gt

    def test_bottoms_category(self):
        sem = make_shopping(query_category="bottoms", num_colors=3,
                            num_fabrics=2, num_patterns=2, num_queries=5, seed=1)
        assert sem.object_labels[sem.ground_truth[0][0]].startswith("bottoms")

    def test_unknown_category(self):
        with pytest.raises(ValueError):
            make_shopping(query_category="shoes")


class TestMscoco:
    @pytest.fixture(scope="class")
    def sem(self):
        return make_mscoco(num_categories=10, num_scenes=60, num_queries=15,
                           seed=6)

    def test_three_modalities(self, sem):
        assert sem.num_modalities == 3
        assert sem.modality_kinds == ("image", "image", "text")
        assert len(sem.query_aux_latents) == 2

    def test_references_not_ground_truth(self, sem):
        for qi in range(sem.num_queries):
            assert sem.query_reference_ids[qi] not in sem.ground_truth[qi]

    def test_gt_scene_sets_consistent(self, sem):
        scene_cats = sem.extra["scene_cats"]
        for qi in range(sem.num_queries):
            gts = sem.ground_truth[qi]
            first = tuple(scene_cats[gts[0]])
            for gt in gts[1:]:
                assert tuple(scene_cats[gt]) == first


class TestLargescale:
    def test_kinds_and_sizes(self):
        for make, kind in ((make_imagetext, "image"), (make_audiotext, "audio")):
            sem = make(n=300, num_queries=10, num_clusters=8, seed=2)
            assert sem.n == 300
            assert sem.extra["kind"] == kind
            assert sem.query_reference_ids is None
            assert sem.query_reference_latents.shape[0] == 10

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            make_largescale(kind="text")

    def test_encode_largescale_dims(self):
        sem = make_imagetext(n=200, num_queries=5, num_clusters=8, seed=2)
        enc = encode_largescale(sem)
        assert enc.objects.dims == (128, 48)  # resnet50 + lstm
        assert enc.queries_option2 is None  # unimodal combo → no Option 2


class TestEncodeDataset:
    def test_option1_reference_reuses_corpus_vector(self, mitstates_small,
                                                    mitstates_encoded):
        enc = mitstates_encoded
        ref = mitstates_small.query_reference_ids[0]
        assert np.array_equal(
            enc.queries_option1[0].vectors[0], enc.objects.modality(0)[ref]
        )

    def test_unimodal_combo_has_no_option2(self, mitstates_encoded):
        assert mitstates_encoded.queries_option2 is None
        assert mitstates_encoded.queries is mitstates_encoded.queries_option1

    def test_composition_combo_has_option2(self, mitstates_small):
        enc = encode_dataset(
            mitstates_small, EncoderCombo("clip", ("lstm",)), seed=0
        )
        assert enc.queries_option2 is not None
        assert enc.queries is enc.queries_option2
        assert enc.queries_option2[0].vectors[0].shape == (128,)

    def test_combo_label(self):
        combo = EncoderCombo("resnet50", ("lstm",))
        assert combo.label == "ResNet50+LSTM"
        assert EncoderCombo("clip", ("gru", "encoding")).label == "CLIP+GRU+Encoding"

    def test_queries_single_modality(self, mitstates_encoded):
        target_only = mitstates_encoded.queries_single_modality(0)
        assert target_only[0].present == (True, False)
        aux_only = mitstates_encoded.queries_single_modality(1)
        assert aux_only[0].present == (False, True)

    def test_wrong_aux_count_rejected(self, mitstates_small):
        with pytest.raises(ValueError):
            encode_dataset(
                mitstates_small, EncoderCombo("resnet50", ("lstm", "gru"))
            )

    def test_all_vectors_normalised(self, mitstates_encoded):
        for mat in mitstates_encoded.objects.matrices:
            assert np.allclose(np.linalg.norm(mat, axis=1), 1.0, atol=1e-4)

    def test_encoding_deterministic(self, mitstates_small):
        a = encode_dataset(mitstates_small, EncoderCombo("resnet50", ("lstm",)), seed=0)
        b = encode_dataset(mitstates_small, EncoderCombo("resnet50", ("lstm",)), seed=0)
        assert np.array_equal(a.objects.modality(0), b.objects.modality(0))

    def test_encoder_seed_changes_vectors(self, mitstates_small):
        a = encode_dataset(mitstates_small, EncoderCombo("resnet50", ("lstm",)), seed=0)
        b = encode_dataset(mitstates_small, EncoderCombo("resnet50", ("lstm",)), seed=1)
        assert not np.allclose(a.objects.modality(0), b.objects.modality(0))
