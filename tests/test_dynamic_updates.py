"""Tests for §IX dynamic updates: soft deletion, compaction, HNSW inserts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.framework import MUST
from repro.core.multivector import MultiVectorSet
from repro.core.space import JointSpace
from repro.core.weights import Weights
from repro.index.flat import FlatIndex
from repro.index.pipeline import FusedIndexBuilder
from repro.index.search import joint_search

from tests.conftest import random_multivector_set, random_query


@pytest.fixture()
def built():
    space = JointSpace(random_multivector_set(300, (8, 6), seed=91),
                       Weights([0.5, 0.5]))
    index = FusedIndexBuilder(gamma=10, seed=2).build(space)
    queries = [random_query((8, 6), seed=s) for s in range(12)]
    return space, index, queries


class TestSoftDeletion:
    def test_deleted_never_returned(self, built):
        space, index, queries = built
        doomed = np.arange(0, 300, 3)
        index.mark_deleted(doomed)
        doomed_set = set(doomed.tolist())
        for engine in ("heap", "paper"):
            for q in queries:
                res = joint_search(index, q, k=10, l=60, engine=engine)
                assert not (set(res.ids.tolist()) & doomed_set)

    def test_recall_on_survivors_preserved(self, built):
        space, index, queries = built
        # Delete the exact top-5 of the first query; the searcher should
        # then surface the next-best *active* objects.
        flat = FlatIndex(space)
        exact_before = flat.search(queries[0], 5).ids
        index.mark_deleted(exact_before)
        res = joint_search(index, queries[0], k=10, l=120)
        sims = space.query_all(queries[0])
        sims[exact_before] = -np.inf
        expected = set(np.argsort(-sims)[:10].tolist())
        assert len(set(res.ids.tolist()) & expected) >= 8

    def test_num_active_tracks_deletions(self, built):
        _, index, _ = built
        assert index.num_active == 300
        index.mark_deleted(np.array([1, 2, 3]))
        assert index.num_active == 297
        # Re-deleting the same ids is idempotent.
        index.mark_deleted(np.array([2, 3]))
        assert index.num_active == 297

    def test_cannot_delete_everything(self, built):
        _, index, _ = built
        with pytest.raises(ValueError):
            index.mark_deleted(np.arange(300))

    def test_out_of_range_rejected(self, built):
        _, index, _ = built
        with pytest.raises(ValueError):
            index.mark_deleted(np.array([999]))

    def test_deleted_mask_survives_save_load(self, built, tmp_path):
        space, index, queries = built
        index.mark_deleted(np.array([5, 6, 7]))
        path = tmp_path / "g.npz"
        index.save(path)
        from repro.index.base import GraphIndex

        loaded = GraphIndex.load(path, space)
        assert loaded.num_active == 297
        res = joint_search(loaded, queries[0], k=10, l=60)
        assert not ({5, 6, 7} & set(res.ids.tolist()))

    def test_active_ids(self, built):
        _, index, _ = built
        index.mark_deleted(np.array([0, 10]))
        active = index.active_ids()
        assert active.size == 298
        assert 0 not in active and 10 not in active


class TestCompaction:
    def test_compact_matches_fresh_build(self, mitstates_encoded):
        must = MUST.from_dataset(mitstates_encoded).build()
        doomed = np.arange(0, mitstates_encoded.objects.n, 5)
        must.mark_deleted(doomed)
        compacted, active = must.compact()
        assert compacted.objects.n == must.objects.n - doomed.size
        assert np.intersect1d(active, doomed).size == 0
        # Searching the compacted index returns remapped ids that point
        # at the same objects the soft-deleted index would return.
        q = mitstates_encoded.queries[0]
        soft = must.search(q, k=5, l=100)
        hard = compacted.search(q, k=5, l=100)
        remapped = active[hard.ids]
        assert len(set(remapped.tolist()) & set(soft.ids.tolist())) >= 3

    def test_compact_without_deletions_is_identity_sized(
        self, mitstates_encoded
    ):
        must = MUST.from_dataset(mitstates_encoded).build()
        compacted, active = must.compact()
        assert compacted.objects.n == must.objects.n
        assert np.array_equal(active, np.arange(must.objects.n))


class TestExactSearchSoftDeletes:
    """Regression: the exact (FlatIndex) path must honour the §IX bitset
    exactly like the graph searcher does — it used to return tombstones."""

    def _fresh_must(self):
        must = MUST(random_multivector_set(250, (8, 6), seed=17),
                    weights=Weights([0.5, 0.5]))
        return must.build()

    def test_exact_search_filters_deleted(self):
        must = self._fresh_must()
        q = random_query((8, 6), seed=4)
        doomed = must.search(q, k=5, exact=True).ids
        must.mark_deleted(doomed)
        res = must.search(q, k=5, exact=True)
        assert not (set(res.ids.tolist()) & set(doomed.tolist()))
        # The survivors are exactly the best *active* objects.
        sims = must.space.query_all(q)
        sims[doomed] = -np.inf
        expected = np.argsort(-sims)[:5]
        assert set(res.ids.tolist()) == set(expected.tolist())

    def test_exact_matches_graph_filtering(self):
        must = self._fresh_must()
        q = random_query((8, 6), seed=9)
        must.mark_deleted(np.arange(0, 250, 4))
        exact = must.search(q, k=10, exact=True)
        graph = must.search(q, k=10, l=250)
        deleted = set(np.arange(0, 250, 4).tolist())
        assert not (set(exact.ids.tolist()) & deleted)
        assert not (set(graph.ids.tolist()) & deleted)
        assert len(set(exact.ids.tolist()) & set(graph.ids.tolist())) >= 9

    def test_exact_batch_filters_deleted(self):
        must = self._fresh_must()
        queries = [random_query((8, 6), seed=s) for s in range(6)]
        must.mark_deleted(np.arange(0, 250, 3))
        deleted = set(np.arange(0, 250, 3).tolist())
        batch = must.batch_search(queries, k=7, exact=True)
        for res in batch:
            assert len(res) == 7
            assert not (set(res.ids.tolist()) & deleted)

    def test_k_exceeding_active_count_returns_only_survivors(self):
        must = MUST(random_multivector_set(40, (8, 6), seed=21),
                    weights=Weights([0.5, 0.5])).build()
        must.mark_deleted(np.arange(35))
        res = must.search(random_query((8, 6), seed=2), k=10, exact=True)
        assert len(res) == 5
        assert set(res.ids.tolist()) == set(range(35, 40))

    def test_exact_without_build_ignores_bitset(self):
        """Exact search works pre-build (no graph, hence no bitset yet)."""
        must = MUST(random_multivector_set(60, (8, 6), seed=5),
                    weights=Weights([0.5, 0.5]))
        res = must.search(random_query((8, 6), seed=0), k=3, exact=True)
        assert len(res) == 3
