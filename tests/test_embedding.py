"""Tests for the embedding substrate: concepts, encoders, fusion, registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.embedding import (
    ENCODER_SPECS,
    FUSION_SPECS,
    EncoderRegistry,
    LatentConceptSpace,
    default_registry,
    make_composition_encoder,
    make_unimodal_encoder,
)


@pytest.fixture(scope="module")
def space():
    return LatentConceptSpace(latent_dim=32, seed=42)


class TestConceptSpace:
    def test_concept_is_unit_and_stable(self, space):
        v1 = space.concept("dog")
        v2 = space.concept("dog")
        assert np.array_equal(v1, v2)
        assert np.linalg.norm(v1) == pytest.approx(1.0)

    def test_different_names_differ(self, space):
        assert not np.allclose(space.concept("dog"), space.concept("cat"))

    def test_concepts_stacks(self, space):
        mat = space.concepts(["a", "b", "c"])
        assert mat.shape == (3, 32)

    def test_concept_immutable(self, space):
        with pytest.raises(ValueError):
            space.concept("dog")[0] = 5.0

    def test_mix_is_normalised(self, space):
        v = space.mix({"dog": 0.7, "cat": 0.3})
        assert np.linalg.norm(v) == pytest.approx(1.0)

    def test_mix_dominated_by_heavy_concept(self, space):
        v = space.mix({"dog": 1.0, "cat": 0.1})
        assert float(v @ space.concept("dog")) > float(v @ space.concept("cat"))

    def test_mix_jitter_keyed(self, space):
        a = space.mix({"dog": 1.0}, jitter=0.3, jitter_key="x")
        b = space.mix({"dog": 1.0}, jitter=0.3, jitter_key="x")
        c = space.mix({"dog": 1.0}, jitter=0.3, jitter_key="y")
        assert np.array_equal(a, b)
        assert not np.allclose(a, c)

    def test_mix_jitter_norm_convention(self, space):
        """Jitter magnitude ≈ perturbation norm, not per-coordinate std."""
        clean = space.mix({"dog": 1.0})
        noisy = space.mix({"dog": 1.0}, jitter=0.3, jitter_key="z")
        # cos angle between clean and noisy ≈ 1/√(1+0.09) ≈ 0.958.
        assert float(clean @ noisy) > 0.85

    def test_jitter_batch_normalises(self, space):
        raw = np.tile(space.concept("dog") * 3.0, (5, 1))
        out = space.jitter_batch(raw, 0.5, key="k")
        assert np.allclose(np.linalg.norm(out, axis=1), 1.0, atol=1e-8)

    def test_jitter_batch_zero_jitter(self, space):
        raw = np.tile(space.concept("dog") * 2.0, (3, 1))
        out = space.jitter_batch(raw, 0.0, key=None)
        assert np.allclose(out, space.concept("dog"), atol=1e-9)

    def test_correlated_concepts_confusable(self, space):
        lat = space.correlated_concepts(
            [f"id{i}" for i in range(20)], groups=2, unique_weight=0.4,
            key="ids",
        )
        sims = lat @ lat.T
        off_diag = sims[~np.eye(20, dtype=bool)]
        # Same-archetype identities are strongly correlated.
        assert off_diag.max() > 0.5

    def test_correlated_concepts_distinct(self, space):
        lat = space.correlated_concepts(
            ["a", "b"], groups=1, unique_weight=0.6, key="g"
        )
        assert not np.allclose(lat[0], lat[1])

    def test_mix_empty_rejected(self, space):
        with pytest.raises(ValueError):
            space.mix({})


class TestSyntheticEncoder:
    def test_output_shape_and_norm(self, space):
        enc = make_unimodal_encoder("resnet50", space, seed=1)
        latents = np.stack([space.concept("a"), space.concept("b")])
        out = enc.encode_latents(latents, key="t")
        assert out.shape == (2, ENCODER_SPECS["resnet50"].dim)
        assert np.allclose(np.linalg.norm(out, axis=1), 1.0, atol=1e-5)

    def test_deterministic_per_key(self, space):
        enc = make_unimodal_encoder("lstm", space, seed=1)
        latents = space.concept("a")[None, :]
        assert np.array_equal(
            enc.encode_latents(latents, key="k"),
            enc.encode_latents(latents, key="k"),
        )
        assert not np.allclose(
            enc.encode_latents(latents, key="k"),
            enc.encode_latents(latents, key="other"),
        )

    def test_semantics_preserved(self, space):
        """Closer latents stay closer after encoding (JL property)."""
        enc = make_unimodal_encoder("encoding", space, seed=1)
        a = space.mix({"x": 1.0})
        near = space.mix({"x": 1.0, "y": 0.2})
        far = space.mix({"z": 1.0})
        out = enc.encode_latents(np.stack([a, near, far]), key="t")
        assert float(out[0] @ out[1]) > float(out[0] @ out[2])

    def test_noise_ordering_resnets(self, space):
        """resnet50 preserves geometry better than resnet17 (less noise)."""
        a = space.mix({"x": 1.0})
        b = space.mix({"x": 1.0})  # identical latent
        errs = {}
        for name in ("resnet17", "resnet50"):
            enc = make_unimodal_encoder(name, space, seed=1)
            va = enc.encode_latents(a[None], key="k1")[0]
            vb = enc.encode_latents(b[None], key="k2")[0]
            errs[name] = 1.0 - float(va @ vb)
        assert errs["resnet50"] < errs["resnet17"]

    def test_unknown_encoder_rejected(self, space):
        with pytest.raises(KeyError):
            make_unimodal_encoder("vgg", space)

    def test_encode_one(self, space):
        enc = make_unimodal_encoder("gru", space, seed=1)
        v = enc.encode_one(space.concept("a"), key="k")
        assert v.shape == (ENCODER_SPECS["gru"].dim,)


class TestCompositionEncoder:
    def test_tower_output_space(self, space):
        enc = make_composition_encoder("clip", space, seed=1)
        latents = space.concept("a")[None, :]
        corpus = enc.encode_latents(latents, key="c")
        comp = enc.encode_composition(latents, latents, key="q")
        assert corpus.shape == comp.shape == (1, FUSION_SPECS["clip"].tower_dim)

    def test_semantic_leak_pulls_toward_reference(self, space):
        enc = make_composition_encoder("tirg", space, seed=1)
        target = space.mix({"goal": 1.0})[None, :]
        reference = space.mix({"ref": 1.0})[None, :]
        comp = enc.encode_composition(target, reference, key="q")
        ref_enc = enc.encode_latents(reference, key="q2")
        tgt_enc = enc.encode_latents(target, key="q3")
        # Composition correlates with the reference, not only the target.
        assert float(comp[0] @ ref_enc[0]) > 0.05
        assert float(comp[0] @ tgt_enc[0]) > float(comp[0] @ ref_enc[0])

    def test_fusion_ordering_clip_beats_mpc(self, space):
        """CLIP fusion error < MPC fusion error (paper Tab. III vs VI)."""
        target = space.mix({"goal": 1.0})[None, :]
        reference = space.mix({"ref": 1.0})[None, :]
        errs = {}
        for name in ("clip", "mpc"):
            enc = make_composition_encoder(name, space, seed=1)
            comp = enc.encode_composition(target, reference, key="q")
            ideal = enc.encode_latents(target, key="ideal")
            errs[name] = 1.0 - float(comp[0] @ ideal[0])
        assert errs["clip"] < errs["mpc"]

    def test_shape_mismatch_rejected(self, space):
        enc = make_composition_encoder("clip", space, seed=1)
        with pytest.raises(ValueError):
            enc.encode_composition(np.zeros((2, 32)), np.zeros((1, 32)))

    def test_unknown_fusion_rejected(self, space):
        with pytest.raises(KeyError):
            make_composition_encoder("blip", space)


class TestRegistry:
    def test_default_registry_has_full_zoo(self):
        for name in list(ENCODER_SPECS) + list(FUSION_SPECS):
            assert name in default_registry

    def test_create_from_registry(self, space):
        enc = default_registry.create("resnet17", space, seed=0)
        assert enc.name == "resnet17"

    def test_unknown_name(self, space):
        with pytest.raises(KeyError):
            default_registry.create("nonexistent", space)

    def test_custom_registration_and_overwrite_guard(self, space):
        reg = EncoderRegistry()
        reg.register("mine", lambda s, seed: "sentinel")
        assert reg.create("mine", space) == "sentinel"
        with pytest.raises(ValueError):
            reg.register("mine", lambda s, seed: None)
        reg.register("mine", lambda s, seed: "v2", overwrite=True)
        assert reg.create("mine", space) == "v2"

    def test_names_sorted(self):
        reg = EncoderRegistry()
        reg.register("b", lambda s, seed: None)
        reg.register("a", lambda s, seed: None)
        assert reg.names() == ["a", "b"]
