"""Filtered-search parity suite (typed Query ``filter=`` pushdown).

The contract under test, per path:

* **exact** — filtered results are **bit-identical** to the brute-force
  post-filter oracle (score everything unfiltered, drop inadmissible
  rows, cut to k): ids *and* similarities, across every vector-store
  backend (dense / float16 / int8 / PQ), flat and segmented layouts,
  ``n_jobs`` ∈ {1, 4}, and through :class:`MustService` while writer
  threads churn the index;
* **segmented exact** additionally equals an unfiltered deterministic
  scan over the *physically* post-filtered corpus (the
  layout-independence property extended to filters);
* **graph** — every returned id is admissible and recall against the
  oracle is ≥ 0.9 (masked vertices route but are never reported).
"""

from __future__ import annotations

import threading
import warnings

import numpy as np
import pytest

from repro.core.framework import MUST
from repro.core.multivector import MultiVectorSet
from repro.core.query import Eq, Query, Range, SearchOptions
from repro.core.space import JointSpace
from repro.core.weights import Weights
from repro.index.flat import FlatIndex
from repro.index.segments import SegmentPolicy
from repro.service import MustService, ServiceConfig
from repro.store import STORE_KINDS

from tests.conftest import random_multivector_set, random_query

N = 300
DIMS = (16, 8)
K = 10
WEIGHTS = Weights([0.6, 0.4])
ALL_KINDS = sorted(STORE_KINDS)
CATEGORIES = np.array(["alpha", "beta", "gamma"])

#: the canonical predicate used throughout: category == "alpha" AND
#: price <= 70 — selectivity ≈ 1/3 · 0.7 on uniform attributes.
FILTER = Eq("category", "alpha") & Range("price", high=70.0)


def _attach_attributes(objects: MultiVectorSet, seed: int) -> MultiVectorSet:
    rng = np.random.default_rng(seed)
    return objects.set_attributes(
        {
            "category": CATEGORIES[rng.integers(0, 3, objects.n)],
            "price": rng.uniform(0.0, 100.0, objects.n),
        }
    )


def _attributed_set(n: int, seed: int) -> MultiVectorSet:
    return _attach_attributes(
        random_multivector_set(n, DIMS, seed=seed), seed + 500
    )


def _admissible_by_ext_id(must: MUST) -> dict[int, bool]:
    """predicate(ext_id) for every *live* object (tombstones excluded)."""
    out: dict[int, bool] = {}
    if must.is_segmented:
        for seg in must.segments.searchable_segments():
            mask = FILTER.mask(seg.space.vectors.attributes)
            if seg.index.deleted is not None:
                alive = ~seg.index.deleted
            else:
                alive = np.ones(seg.n, dtype=bool)
            for ext, ok in zip(seg.ext_ids[alive], mask[alive]):
                out[int(ext)] = bool(ok)
    else:
        mask = FILTER.mask(must.objects.attributes)
        for i, ok in enumerate(mask):
            out[i] = bool(ok)
    return out


def _oracle(must: MUST, query, k: int):
    """Brute-force post-filter: full unfiltered exact scan, drop
    inadmissible rows, cut to *k*.  Returns (ids, similarities)."""
    admissible = _admissible_by_ext_id(must)
    full = must.query(
        Query(query), SearchOptions(k=max(len(admissible), k), exact=True)
    )
    kept = [
        (int(i), s)
        for i, s in zip(full.ids, full.similarities)
        if admissible[int(i)]
    ]
    ids = np.asarray([i for i, _ in kept[:k]], dtype=np.int64)
    sims = np.asarray([s for _, s in kept[:k]], dtype=np.float64)
    return ids, sims


def assert_bitwise(res, oracle_ids, oracle_sims):
    assert np.array_equal(res.ids, oracle_ids)
    assert np.array_equal(res.similarities, oracle_sims)


@pytest.fixture(scope="module")
def queries():
    return [random_query(DIMS, seed=200 + s) for s in range(10)]


def _flat_must(kind: str) -> MUST:
    return MUST(
        _attributed_set(N, seed=31), weights=WEIGHTS, compression=kind
    ).build()


def _segmented_must(kind: str) -> MUST:
    must = MUST(
        _attributed_set(N, seed=31),
        weights=WEIGHTS,
        compression=kind,
        segment_policy=SegmentPolicy(
            seal_size=64, max_segments=8, max_deleted_fraction=0.9
        ),
    ).build()
    must.insert(_attributed_set(120, seed=32))
    must.insert(_attributed_set(30, seed=33))  # stays in the delta
    must.mark_deleted(np.arange(0, 80, 7))
    return must


# ----------------------------------------------------------------------
# Exact-path bitwise parity, every store backend, both layouts
# ----------------------------------------------------------------------
class TestExactOracleParity:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_flat_bitwise(self, queries, kind):
        must = _flat_must(kind)
        for q in queries:
            ids, sims = _oracle(must, q, K)
            res = must.query(
                Query(q, filter=FILTER), SearchOptions(k=K, exact=True)
            )
            assert_bitwise(res, ids, sims)
            assert len(res.ids) == K

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_segmented_bitwise(self, queries, kind):
        must = _segmented_must(kind)
        assert must.segments.num_segments >= 2
        for q in queries:
            ids, sims = _oracle(must, q, K)
            res = must.query(
                Query(q, filter=FILTER), SearchOptions(k=K, exact=True)
            )
            assert_bitwise(res, ids, sims)

    @pytest.mark.parametrize("kind", ["none", "int8"])
    def test_refine_pipeline_stays_admissible(self, queries, kind):
        must = _segmented_must(kind)
        admissible = _admissible_by_ext_id(must)
        for q in queries[:4]:
            res = must.query(
                Query(q, filter=FILTER),
                SearchOptions(k=K, exact=True, refine=3),
            )
            assert all(admissible[int(i)] for i in res.ids)
            # On the dense store the refine shortlist comes from the
            # same deterministic scan the oracle ranks by, so the ids
            # match; the reranked similarities travel the exact-kernel
            # route (float32 GEMV) and agree to ~1e-7, not bitwise.
            if kind == "none":
                ids, sims = _oracle(must, q, K)
                assert np.array_equal(res.ids, ids)
                np.testing.assert_allclose(
                    res.similarities, sims, rtol=0, atol=1e-6
                )

    def test_segmented_equals_physical_postfilter(self, queries):
        """Filtered exact == unfiltered deterministic scan over a corpus
        that physically contains only the admissible objects."""
        must = _segmented_must("none")
        admissible = _admissible_by_ext_id(must)
        keep_ext = np.asarray(
            sorted(e for e, ok in admissible.items() if ok), dtype=np.int64
        )
        mats = [[] for _ in DIMS]
        for seg in must.segments.searchable_segments():
            alive = (
                np.ones(seg.n, dtype=bool)
                if seg.index.deleted is None
                else ~seg.index.deleted
            )
            mask = FILTER.mask(seg.space.vectors.attributes) & alive
            for i in range(len(DIMS)):
                mats[i].append(seg.space.vectors.exact_modality(i)[mask])
        # Reassemble in ascending external-id order.
        ext_concat = np.concatenate(
            [
                seg.ext_ids[
                    FILTER.mask(seg.space.vectors.attributes)
                    & (
                        np.ones(seg.n, dtype=bool)
                        if seg.index.deleted is None
                        else ~seg.index.deleted
                    )
                ]
                for seg in must.segments.searchable_segments()
            ]
        )
        order = np.argsort(ext_concat)
        assert np.array_equal(ext_concat[order], keep_ext)
        sub = MultiVectorSet(
            [np.concatenate(parts)[order] for parts in mats]
        )
        flat = FlatIndex(
            JointSpace(sub, WEIGHTS), ids=keep_ext, deterministic=True
        )
        for q in queries[:5]:
            filtered = must.query(
                Query(q, filter=FILTER), SearchOptions(k=K, exact=True)
            )
            physical = flat.search(q, K)
            assert_bitwise(filtered, physical.ids, physical.similarities)


# ----------------------------------------------------------------------
# Batched execution: n_jobs parity, per-query filters in one wave
# ----------------------------------------------------------------------
class TestBatchedFiltering:
    @pytest.mark.parametrize("layout", ["flat", "segmented"])
    @pytest.mark.parametrize("exact", [False, True])
    def test_n_jobs_parity_bitwise(self, queries, layout, exact):
        must = (
            _flat_must("none") if layout == "flat"
            else _segmented_must("none")
        )
        typed = [
            Query(q, filter=FILTER if i % 2 == 0 else None, k=K - i % 3)
            for i, q in enumerate(queries)
        ]
        opts = {"k": K, "l": 64, "exact": exact}
        seq = must.query(typed, SearchOptions(**opts, n_jobs=1))
        par = must.query(typed, SearchOptions(**opts, n_jobs=4))
        for a, b in zip(seq, par):
            assert np.array_equal(a.ids, b.ids)
            assert np.array_equal(a.similarities, b.similarities)

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_exact_batch_matches_oracle_ranks(self, queries, kind):
        """The GEMM-wave batch keeps its rank-level contract under
        filters: same admissible ids as the oracle (similarities travel
        the stacked float32 route, hence ranks rather than bits)."""
        must = _flat_must(kind)
        batch = must.query(
            [Query(q, filter=FILTER) for q in queries],
            SearchOptions(k=K, exact=True),
        )
        for q, res in zip(queries, batch):
            ids, _ = _oracle(must, q, K)
            assert set(int(i) for i in res.ids) == set(int(i) for i in ids)

    def test_batch_stats_aggregate(self, queries):
        must = _flat_must("none")
        batch = must.query(
            [Query(q, filter=FILTER) for q in queries[:4]],
            SearchOptions(k=K, exact=True),
        )
        assert batch.stats.joint_evals >= 4 * N


# ----------------------------------------------------------------------
# Graph path: admissibility invariant + recall gate
# ----------------------------------------------------------------------
class TestGraphFiltering:
    @pytest.mark.parametrize("layout", ["flat", "segmented"])
    def test_recall_at_least_0_9(self, queries, layout):
        must = (
            _flat_must("none") if layout == "flat"
            else _segmented_must("none")
        )
        admissible = _admissible_by_ext_id(must)
        hits = total = 0
        for q in queries:
            ids, _ = _oracle(must, q, K)
            res = must.query(
                Query(q, filter=FILTER), SearchOptions(k=K, l=128)
            )
            assert all(admissible[int(i)] for i in res.ids)
            hits += np.intersect1d(res.ids, ids).size
            total += ids.size
        assert hits / total >= 0.9, f"filtered graph recall {hits / total}"

    @pytest.mark.parametrize("kind", ["float16", "int8", "pq"])
    def test_compressed_graph_stays_admissible(self, queries, kind):
        must = _flat_must(kind)
        admissible = _admissible_by_ext_id(must)
        for q in queries[:4]:
            res = must.query(
                Query(q, filter=FILTER),
                SearchOptions(k=K, l=128, refine=2),
            )
            assert all(admissible[int(i)] for i in res.ids)

    @pytest.mark.parametrize("engine", ["heap", "paper"])
    def test_both_engines_respect_filter(self, queries, engine):
        must = _flat_must("none")
        admissible = _admissible_by_ext_id(must)
        res = must.query(
            Query(queries[0], filter=FILTER),
            SearchOptions(k=K, l=128, engine=engine),
        )
        assert len(res.ids) == K
        assert all(admissible[int(i)] for i in res.ids)

    def test_empty_filter_returns_empty(self, queries):
        must = _flat_must("none")
        res = must.query(
            Query(queries[0], filter=Eq("category", "no-such")),
            SearchOptions(k=K, l=64),
        )
        assert len(res.ids) == 0
        res = must.query(
            Query(queries[0], filter=Eq("category", "no-such")),
            SearchOptions(k=K, exact=True),
        )
        assert len(res.ids) == 0


# ----------------------------------------------------------------------
# Lifecycle: inserts, deletes, compaction, persistence
# ----------------------------------------------------------------------
class TestFilterLifecycle:
    def test_filtered_after_compaction(self, queries):
        must = _segmented_must("none")
        must.compact()
        for q in queries[:5]:
            ids, sims = _oracle(must, q, K)
            res = must.query(
                Query(q, filter=FILTER), SearchOptions(k=K, exact=True)
            )
            assert_bitwise(res, ids, sims)

    @pytest.mark.parametrize("kind", ["none", "pq"])
    def test_filtered_after_save_load(self, tmp_path, queries, kind):
        must = _segmented_must(kind)
        ref = [
            must.query(
                Query(q, filter=FILTER), SearchOptions(k=K, exact=True)
            )
            for q in queries[:5]
        ]
        must.save_index(tmp_path / "idx")
        fresh = MUST(
            _attributed_set(N, seed=31), weights=WEIGHTS, compression=kind
        ).load_index(tmp_path / "idx")
        for q, r in zip(queries[:5], ref):
            res = fresh.query(
                Query(q, filter=FILTER), SearchOptions(k=K, exact=True)
            )
            assert_bitwise(res, r.ids, r.similarities)

    def test_insert_without_attributes_rejected(self):
        must = _segmented_must("none")
        with pytest.raises(ValueError, match="same attribute fields"):
            must.insert(random_multivector_set(10, DIMS, seed=99))

    def test_attach_after_insert_rejected(self):
        must = _segmented_must("none")
        with pytest.raises(ValueError, match="segment owns its attribute"):
            must.set_attributes({"category": np.array(["x"])})


# ----------------------------------------------------------------------
# Through the service, under concurrent writers
# ----------------------------------------------------------------------
class TestServiceFiltering:
    def test_quiesced_service_bitwise(self, queries):
        must = _segmented_must("none")
        with MustService(
            must, ServiceConfig(max_batch=8, max_wait_ms=2.0)
        ) as svc:
            for q in queries[:5]:
                ids, sims = _oracle(must, q, K)
                res = svc.search(
                    Query(q, filter=FILTER), SearchOptions(k=K, exact=True)
                )
                assert_bitwise(res, ids, sims)

    def test_filtered_reads_under_concurrent_writers(self, queries):
        must = _segmented_must("none")
        errors: list[Exception] = []
        stop = threading.Event()

        with MustService(
            must, ServiceConfig(max_batch=8, max_wait_ms=1.0, n_jobs=2)
        ) as svc:

            def writer():
                seed = 60
                try:
                    while not stop.is_set():
                        ids = svc.insert(_attributed_set(12, seed=seed))
                        svc.mark_deleted(ids[::3])
                        seed += 1
                except Exception as exc:  # pragma: no cover - surfaced below
                    errors.append(exc)

            def reader(qi: int):
                try:
                    for _ in range(12):
                        for exact in (True, False):
                            res = svc.search(
                                Query(queries[qi], filter=FILTER),
                                SearchOptions(k=K, l=64, exact=exact),
                            )
                            # Every answer must satisfy the predicate —
                            # regardless of which snapshot served it.
                            assert res.ids.size <= K
                except Exception as exc:
                    errors.append(exc)

            threads = [
                threading.Thread(target=reader, args=(i,)) for i in range(4)
            ]
            wthread = threading.Thread(target=writer)
            wthread.start()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stop.set()
            wthread.join()
            assert not errors, errors[0]

            # Quiesced: the live state answers bit-identically to the
            # oracle computed on that same state.
            for q in queries[:3]:
                ids, sims = _oracle(must, q, K)
                res = svc.search(
                    Query(q, filter=FILTER), SearchOptions(k=K, exact=True)
                )
                assert_bitwise(res, ids, sims)

    def test_legacy_submit_with_typed_query_filter(self, queries):
        """A typed Query rides through the legacy kwarg shim too."""
        must = _flat_must("none")
        admissible = _admissible_by_ext_id(must)
        with MustService(must, ServiceConfig(max_batch=4)) as svc:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                res = svc.search(
                    Query(queries[0], filter=FILTER), k=K, exact=True
                )
            assert all(admissible[int(i)] for i in res.ids)
