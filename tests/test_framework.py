"""Tests for the MUST facade: fit → build → search, persistence, options."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.framework import MUST
from repro.core.multivector import MultiVector
from repro.core.weights import Weights
from repro.metrics import mean_hit_rate


@pytest.fixture(scope="module")
def trained(mitstates_encoded):
    enc = mitstates_encoded
    must = MUST.from_dataset(enc)
    anchors = enc.queries[:20]
    positives = np.asarray([g[0] for g in enc.ground_truth[:20]])
    must.fit_weights(anchors, positives, epochs=100, learning_rate=0.25)
    must.build()
    return must


class TestLifecycle:
    def test_default_weights_uniform(self, mitstates_encoded):
        must = MUST.from_dataset(mitstates_encoded)
        assert must.weights == Weights.uniform(2)

    def test_search_before_build_rejected(self, mitstates_encoded):
        must = MUST.from_dataset(mitstates_encoded)
        with pytest.raises(ValueError):
            must.search(mitstates_encoded.queries[0])

    def test_fit_installs_weights(self, trained):
        assert trained.weight_result is not None
        assert trained.weights == trained.weight_result.weights

    def test_fit_weights_pool_validation(self, mitstates_encoded):
        must = MUST.from_dataset(mitstates_encoded)
        anchors = mitstates_encoded.queries[:4]
        positives = np.asarray(
            [g[0] for g in mitstates_encoded.ground_truth[:4]]
        )
        with pytest.raises(ValueError, match="pool"):
            must.fit_weights(anchors, positives,
                             pool_object_ids=np.array([0, 1]))

    def test_set_weights_invalidates_index(self, trained, mitstates_encoded):
        must = MUST.from_dataset(mitstates_encoded)
        must.build()
        assert must.is_built
        must.set_weights(Weights([0.2, 0.8]))
        assert not must.is_built

    def test_fit_invalidates_index(self, mitstates_encoded):
        enc = mitstates_encoded
        must = MUST.from_dataset(enc).build()
        anchors = enc.queries[:5]
        positives = np.asarray([g[0] for g in enc.ground_truth[:5]])
        must.fit_weights(anchors, positives, epochs=10)
        assert not must.is_built


class TestSearch:
    def test_search_returns_k(self, trained, mitstates_encoded):
        res = trained.search(mitstates_encoded.queries[0], k=7, l=60)
        assert len(res) == 7

    def test_exact_flag_matches_brute_force(self, trained, mitstates_encoded):
        q = mitstates_encoded.queries[0]
        exact = trained.search(q, k=10, exact=True)
        sims = trained.space.query_all(q)
        assert exact.similarities[0] == pytest.approx(sims.max(), abs=1e-6)

    def test_graph_close_to_exact(self, trained, mitstates_encoded):
        overlap = 0
        for q in mitstates_encoded.queries[:15]:
            approx = trained.search(q, k=10, l=100)
            exact = trained.search(q, k=10, exact=True)
            overlap += np.intersect1d(approx.ids, exact.ids).size
        assert overlap / 150 > 0.85

    def test_user_defined_weights(self, trained, mitstates_encoded):
        q = mitstates_encoded.queries[1]
        default = trained.search(q, k=10, l=60)
        user = trained.search(q, k=10, l=60, weights=Weights([0.95, 0.05]))
        assert not np.array_equal(default.ids, user.ids)

    def test_missing_modality_query(self, trained, mitstates_encoded):
        q = mitstates_encoded.queries[0].replace(1, None)
        res = trained.search(q, k=5, l=60)
        assert len(res) == 5

    def test_batch_search(self, trained, mitstates_encoded):
        out = trained.batch_search(mitstates_encoded.queries[:4], k=3, l=40)
        assert len(out) == 4
        assert all(len(r) == 3 for r in out)

    def test_accuracy_reasonable(self, trained, mitstates_encoded):
        res = trained.batch_search(mitstates_encoded.queries, k=10, l=100)
        r10 = mean_hit_rate(
            [r.ids for r in res], mitstates_encoded.ground_truth, 10
        )
        assert r10 > 0.5


class TestPersistence:
    def test_save_load_roundtrip(self, trained, mitstates_encoded, tmp_path):
        path = tmp_path / "must.npz"
        trained.save_index(path)
        fresh = MUST.from_dataset(mitstates_encoded)
        fresh.load_index(path)
        assert fresh.weights == trained.weights
        q = mitstates_encoded.queries[0]
        a = trained.search(q, k=10, l=60)
        b = fresh.search(q, k=10, l=60)
        assert np.array_equal(a.ids, b.ids)

    def test_save_before_build_rejected(self, mitstates_encoded, tmp_path):
        must = MUST.from_dataset(mitstates_encoded)
        with pytest.raises(ValueError):
            must.save_index(tmp_path / "x.npz")
