"""Parity and behaviour tests for the lockstep graph wave engine.

The wave engine is *not* bit-identical to the per-query heap engine
(expansion order interleaves across the batch), so the pins here are:

* **recall parity** — against exact ground truth, the wave batch must
  match the per-query oracle within a small ε, across thread counts,
  store backends, layouts, filters, k overrides, and deletions;
* **composition independence** — a query's answer is bit-identical
  whether it runs alone or inside any batch (given its own rng);
* **plan recording** — the executor reports which strategy actually
  ran, so the negative-speedup trap can never silently return;
* **wave stats** — the batch-level ``waves``/``frontier_sizes`` trace
  surfaces through :class:`BatchResult` and the serving layer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.framework import MUST
from repro.core.multivector import MultiVector, MultiVectorSet
from repro.core.query import Eq, Query, SearchOptions
from repro.core.results import SearchStats
from repro.core.weights import Weights
from repro.index.graph_wave import graph_wave_search

N, M, D = 400, 2, 16
K, L = 10, 64
B = 8
EPS = 0.05


def _corpus(n=N, seed=0):
    rng = np.random.default_rng(seed)
    mats = [rng.standard_normal((n, D)).astype(np.float32) for _ in range(M)]
    mats = [v / np.linalg.norm(v, axis=1, keepdims=True) for v in mats]
    attrs = {"color": np.array(["red", "blue"] * (n // 2))}
    return MultiVectorSet(mats, attributes=attrs)


def _queries(b=B, seed=1):
    rng = np.random.default_rng(seed)
    return [
        MultiVector(
            [rng.standard_normal(D).astype(np.float32) for _ in range(M)]
        )
        for _ in range(b)
    ]


@pytest.fixture(scope="module")
def objects():
    return _corpus()


@pytest.fixture(scope="module")
def queries():
    return _queries()


@pytest.fixture(scope="module")
def must(objects):
    return MUST(objects, weights=Weights([0.6, 0.4])).build()


def _recall(got, truth):
    hits = sum(
        len(set(g.ids[:K]) & set(t.ids[:K])) for g, t in zip(got, truth)
    )
    return hits / (K * len(truth))


class TestFlatParity:
    @pytest.mark.parametrize("n_jobs", [1, 4])
    def test_recall_matches_per_query_oracle(self, must, queries, n_jobs):
        truth = [must.search(q, k=K, exact=True) for q in queries]
        wave = must.query(
            queries, SearchOptions(k=K, l=L, rng=3, n_jobs=n_jobs)
        )
        oracle = must.query(
            queries, SearchOptions(k=K, l=L, rng=3, engine="heap",
                                   n_jobs=n_jobs)
        )
        assert wave.plan == "graph/wave"
        assert oracle.plan == f"graph/pool(n_jobs={n_jobs})"
        assert _recall(wave, truth) >= _recall(oracle, truth) - EPS

    def test_results_independent_of_n_jobs(self, must, queries):
        a = must.query(queries, SearchOptions(k=K, l=L, rng=3, n_jobs=1))
        b = must.query(queries, SearchOptions(k=K, l=L, rng=3, n_jobs=4))
        for x, y in zip(a, b):
            assert np.array_equal(x.ids, y.ids)
            np.testing.assert_array_equal(x.similarities, y.similarities)

    def test_single_query_wave_engine(self, must, queries):
        res = must.query(
            queries[0], SearchOptions(k=K, l=L, rng=3, engine="wave")
        )
        assert len(res) == K
        assert res.stats.waves > 0

    def test_refine_reranks_exact(self, must, queries):
        run = must.query(queries, SearchOptions(k=K, l=L, rng=3, refine=3))
        assert run.plan == "graph/wave"
        assert run.stats.reranked > 0
        truth = [must.search(q, k=K, exact=True) for q in queries]
        assert _recall(run, truth) >= 1.0 - EPS


class TestCompositionIndependence:
    def test_alone_equals_batched(self, must, queries):
        index = must.index
        solo, _ = graph_wave_search(index, queries[:1], k=K, l=L, rngs=[7])
        rngs = [7] + list(range(100, 99 + len(queries)))
        batched, _ = graph_wave_search(index, queries, k=K, l=L, rngs=rngs)
        assert np.array_equal(solo[0].ids, batched[0].ids)
        np.testing.assert_array_equal(
            solo[0].similarities, batched[0].similarities
        )

    def test_mixed_widths_stay_independent(self, must, queries):
        # A wave-mate with a much wider l must not change this query.
        index = must.index
        solo, _ = graph_wave_search(index, queries[:1], k=K, l=L, rngs=[7])
        wide = Query(queries[1], k=120)
        mixed, _ = graph_wave_search(
            index, [queries[0], wide], k=K, l=L, rngs=[7, 8]
        )
        assert np.array_equal(solo[0].ids, mixed[0].ids)
        np.testing.assert_array_equal(
            solo[0].similarities, mixed[0].similarities
        )
        assert len(mixed[1]) == 120  # the straggler still finished


@pytest.mark.parametrize("kind", ["int8", "pq"])
class TestCompressedParity:
    def test_recall_matches_per_query_oracle(self, objects, queries, kind):
        must = MUST(
            objects, weights=Weights([0.6, 0.4]), compression=kind
        ).build()
        truth = [must.search(q, k=K, exact=True) for q in queries]
        wave = must.query(queries, SearchOptions(k=K, l=L, rng=3))
        oracle = must.query(
            queries, SearchOptions(k=K, l=L, rng=3, engine="heap")
        )
        assert wave.plan == "graph/wave"
        assert _recall(wave, truth) >= _recall(oracle, truth) - EPS


class TestSegmentedParity:
    @pytest.fixture(scope="class")
    def seg_must(self, objects):
        must = MUST(objects, weights=Weights([0.6, 0.4])).build()
        extra = _corpus(n=40, seed=9)
        must.insert(extra)
        must.mark_deleted(np.array([3, 5, 7, 11]))
        assert must.is_segmented
        return must

    @pytest.mark.parametrize("n_jobs", [1, 4])
    def test_recall_matches_per_query_oracle(self, seg_must, queries,
                                             n_jobs):
        truth = [seg_must.search(q, k=K, exact=True) for q in queries]
        wave = seg_must.query(
            queries, SearchOptions(k=K, l=L, rng=3, n_jobs=n_jobs)
        )
        oracle = seg_must.query(
            queries, SearchOptions(k=K, l=L, rng=3, engine="heap",
                                   n_jobs=n_jobs)
        )
        assert wave.plan == "graph/wave"
        assert _recall(wave, truth) >= _recall(oracle, truth) - EPS

    def test_deleted_never_surface(self, seg_must, queries):
        run = seg_must.query(queries, SearchOptions(k=K, l=L, rng=3))
        for res in run:
            assert not set(res.ids) & {3, 5, 7, 11}

    def test_filtered_queries_respect_predicate(self, seg_must, queries):
        typed = [Query(q, filter=Eq("color", "red")) for q in queries]
        run = seg_must.query(typed, SearchOptions(k=K, l=L, rng=3))
        reds = set(
            np.flatnonzero(
                seg_must.segments.view().segments[0].space.vectors
                .attributes.column("color") == "red"
            )
        )
        for res in run:
            assert len(res) > 0
            # external ids of the first segment are 0..N-1; the delta's
            # attributes alternate the same way, so every admissible id
            # is even under the alternating red/blue layout.
            assert all(int(i) % 2 == 0 for i in res.ids)
        assert reds  # sanity: the predicate selects something

    def test_segments_probed_aggregate(self, seg_must, queries):
        run = seg_must.query(queries, SearchOptions(k=K, l=L, rng=3))
        per_query = [r.stats.segments_probed for r in run]
        assert all(p >= 1 for p in per_query)
        assert run.stats.segments_probed == sum(per_query)

    def test_per_query_k_override(self, seg_must, queries):
        typed = [Query(queries[0], k=40), queries[1]]
        run = seg_must.query(typed, SearchOptions(k=K, l=20, rng=3))
        assert len(run[0]) == 40
        assert len(run[1]) == K


class TestWaveStats:
    def test_batch_carries_wave_trace(self, must, queries):
        run = must.query(queries, SearchOptions(k=K, l=L, rng=3))
        assert run.stats.waves > 0
        assert len(run.stats.frontier_sizes) == run.stats.waves
        assert sum(run.stats.frontier_sizes) > 0
        # Per-query counters stay per-query: the wave trace is
        # batch-level only, so aggregation cannot double-count it.
        for res in run:
            assert res.stats.waves == 0
            assert res.stats.hops > 0

    def test_heap_plan_has_no_wave_trace(self, must, queries):
        run = must.query(queries, SearchOptions(k=K, l=L, rng=3,
                                                engine="heap"))
        assert run.stats.waves == 0
        assert run.stats.frontier_sizes == []

    def test_merge_concatenates_frontiers(self):
        a = SearchStats(waves=2, frontier_sizes=[4, 5])
        b = SearchStats(waves=1, frontier_sizes=[6])
        a.merge(b)
        assert a.waves == 3
        assert a.frontier_sizes == [4, 5, 6]
        # merge must never alias the default list across instances
        fresh = SearchStats()
        fresh.merge(SearchStats(frontier_sizes=[1]))
        assert SearchStats().frontier_sizes == []


class TestServingWaves:
    def test_coalesced_wave_bit_identical_to_solo(self, must, queries):
        with must.serve() as svc:
            futs = [
                svc.submit(q, SearchOptions(k=K, l=L, engine="wave", rng=i))
                for i, q in enumerate(queries)
            ]
            got = [f.result() for f in futs]
            snap = svc.snapshot()
            for i, (q, res) in enumerate(zip(queries, got)):
                ref = snap.search(q, k=K, l=L, engine="wave", rng=i)
                assert np.array_equal(res.ids, ref.ids)
                np.testing.assert_array_equal(
                    res.similarities, ref.similarities
                )
            summary = svc.stats.summary()
        assert sum(summary["graph_waves"].values()) >= 1
        assert sum(summary["wave_frontier_sizes"].values()) >= 1

    def test_auto_requests_stay_on_per_query_path(self, must, queries):
        with must.serve() as svc:
            res = svc.search(queries[0], SearchOptions(k=K, l=L, rng=5))
            ref = must.search(queries[0], k=K, l=L, rng=5)
            assert np.array_equal(res.ids, ref.ids)
            np.testing.assert_array_equal(res.similarities, ref.similarities)
            summary = svc.stats.summary()
        assert summary["graph_waves"] == {}


class TestAdjacencyCache:
    def test_fifo_eviction_is_bounded_and_keeps_the_new_entry(self):
        """Cycling more graphs than the cache bound must evict exactly
        one (the oldest) per install — a full ``clear()`` here would
        also wipe the entry being returned, so a service cycling >limit
        snapshots would rebuild its *hot* CSR on every wave."""
        from types import SimpleNamespace

        from repro.index import graph_wave as gw

        saved = dict(gw._ADJ_CACHE)
        gw._ADJ_CACHE.clear()

        def fake_index(n=3):
            return SimpleNamespace(
                neighbors=[
                    np.array([(i + 1) % n], dtype=np.int64) for i in range(n)
                ]
            )

        try:
            cycled = [fake_index() for _ in range(gw._ADJ_CACHE_LIMIT + 5)]
            for index in cycled:
                flat, offsets = gw._csr_adjacency(index)
                assert len(gw._ADJ_CACHE) <= gw._ADJ_CACHE_LIMIT
                np.testing.assert_array_equal(flat, [1, 2, 0])
                np.testing.assert_array_equal(offsets, [0, 1, 2, 3])
            # Survivors are exactly the most recent `limit` graphs …
            assert set(gw._ADJ_CACHE) == {
                id(index.neighbors)
                for index in cycled[-gw._ADJ_CACHE_LIMIT:]
            }
            # … and the hottest entry still hits (same objects back).
            flat1, off1 = gw._csr_adjacency(cycled[-1])
            flat2, off2 = gw._csr_adjacency(cycled[-1])
            assert flat1 is flat2 and off1 is off2
        finally:
            gw._ADJ_CACHE.clear()
            gw._ADJ_CACHE.update(saved)
