"""Hybrid dense+lexical end-to-end suite.

What must hold, per the subsystem's acceptance gates:

* **engine parity** — the inverted posting-list engine answers
  bit-identically (ids *and* similarities) to the brute-force CSR
  oracle on every deployment surface: flat and segmented layouts,
  batch ``n_jobs`` ∈ {1, 4}, graph and exact plans, through
  :class:`MustService` and :class:`ShardedService`, and while
  insert/delete/compact churn the corpus;
* **layout independence** — the exact hybrid answer is bitwise equal
  between a flat build and a segmented build of the same corpus
  (integer term frequencies make the summed statistics exact in
  float64, so the stamped global stats agree across layouts);
* **recall lift** — on the planted two-level corpus, hybrid fusion
  strictly beats dense-only recall@k (dense resolves the topic, only
  the rare lexical terms pin the group);
* **manifest v4** — a segmented corpus with a sparse plane round-trips
  through save/load bitwise, while dense-only corpora keep writing v2
  archives loadable by older builds;
* **registry validation** — typo'd metric/engine names fail at
  construction with did-you-mean errors, and non-IP dense metrics are
  served by the exact paths against a numpy reference.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.framework import MUST
from repro.core.multivector import (
    MultiVector,
    MultiVectorSet,
    normalize_rows,
)
from repro.core.query import Query, SearchOptions
from repro.core.registry import dense_score_rows
from repro.core.weights import Weights
from repro.index.pipeline import FusedIndexBuilder
from repro.index.segments import MANIFEST_NAME, SegmentPolicy
from repro.service import MustService, ServiceConfig, ShardedService
from repro.sparse.synthetic import synthetic_hybrid

pytest.importorskip("scipy.sparse")

K = 10
L = 60
#: shape knobs shared by the corpus and every churn chunk — vocabulary
#: size is a function of these, and inserted objects must carry the
#: corpus vocabulary.
SHAPE = dict(n_topics=4, groups_per_topic=4, group_size=8, dim=24)
CHEAP_BUILDER = FusedIndexBuilder(gamma=8, epsilon=1, max_candidates=16)


@pytest.fixture(scope="module")
def dataset():
    return synthetic_hybrid(num_queries=10, seed=3, **SHAPE)


@pytest.fixture(scope="module")
def hybrid_queries(dataset):
    return [
        Query(
            MultiVector.from_arrays([dataset.query_dense[i]]),
            sparse=dataset.query_sparse[i],
            sparse_weight=0.8,
        )
        for i in range(dataset.num_queries)
    ]


def churn_chunk(seed: int) -> MultiVectorSet:
    """A small insertable corpus slice sharing the fixture vocabulary."""
    extra = synthetic_hybrid(
        num_queries=1, seed=seed, **{**SHAPE, "group_size": 2}
    )
    return MultiVectorSet([extra.dense.copy()], sparse=extra.sparse)


def flat_must(dataset) -> MUST:
    return MUST(
        MultiVectorSet([dataset.dense.copy()], sparse=dataset.sparse),
        weights=Weights([1.0]),
        builder=CHEAP_BUILDER,
    ).build()


def segmented_must(dataset, churn: bool = True) -> MUST:
    must = MUST(
        MultiVectorSet([dataset.dense.copy()], sparse=dataset.sparse),
        weights=Weights([1.0]),
        builder=CHEAP_BUILDER,
        segment_policy=SegmentPolicy(
            seal_size=32, max_segments=8, max_deleted_fraction=0.9
        ),
    ).build()
    if churn:
        must.insert(churn_chunk(seed=90))
        must.mark_deleted(np.arange(0, 24, 5))
    return must


def assert_same(got, oracle) -> None:
    np.testing.assert_array_equal(got.ids, oracle.ids)
    np.testing.assert_array_equal(got.similarities, oracle.similarities)


def assert_engine_parity(search, queries, **plan) -> None:
    """``search(queries, options)`` answers identically on both engines."""
    inv = search(queries, SearchOptions(sparse_engine="inverted", **plan))
    ora = search(queries, SearchOptions(sparse_engine="exact", **plan))
    for got, oracle in zip(inv, ora):
        assert_same(got, oracle)


# ----------------------------------------------------------------------
# Accuracy: the two-level corpus separates the modality families
# ----------------------------------------------------------------------
def test_hybrid_recall_beats_dense_only(dataset, hybrid_queries):
    must = flat_must(dataset)
    opts = SearchOptions(k=K, exact=True)

    def recall(results):
        hits = [
            np.isin(r.ids[:K], t).sum() / min(K, t.size)
            for r, t in zip(results, dataset.truth)
        ]
        return float(np.mean(hits))

    hybrid = recall(must.query(hybrid_queries, opts))
    dense_only = recall(
        must.query([q.vector for q in hybrid_queries], opts)
    )
    assert hybrid > dense_only


# ----------------------------------------------------------------------
# Engine parity across layouts, plans, and parallelism
# ----------------------------------------------------------------------
@pytest.mark.parametrize("layout", ["flat", "segmented"])
@pytest.mark.parametrize("n_jobs", [1, 4])
@pytest.mark.parametrize("plan", ["graph", "exact"])
def test_engine_parity_in_process(
    dataset, hybrid_queries, layout, n_jobs, plan
):
    must = (
        flat_must(dataset) if layout == "flat" else segmented_must(dataset)
    )
    kwargs: dict = {"k": K, "n_jobs": n_jobs}
    if plan == "exact":
        kwargs["exact"] = True
    else:
        kwargs["l"] = L
    assert_engine_parity(must.query, hybrid_queries, **kwargs)


def test_engine_parity_survives_churn(dataset, hybrid_queries):
    must = segmented_must(dataset, churn=False)
    for stage, mutate in (
        ("insert", lambda: must.insert(churn_chunk(seed=91))),
        ("delete", lambda: must.mark_deleted(np.arange(0, 40, 3))),
        ("compact", lambda: must.segments.compact()),
    ):
        mutate()
        assert_engine_parity(
            must.query, hybrid_queries, k=K, l=L
        ), stage
        assert_engine_parity(
            must.query, hybrid_queries, k=K, exact=True
        ), stage


def test_flat_vs_segmented_exact_bitwise(dataset, hybrid_queries):
    """Layout independence extends to the hybrid exact plan: the same
    corpus answers identically whether it lives in one flat matrix or
    in sealed segments (stamped stats are exact sums of exact sums)."""
    flat = flat_must(dataset)
    seg = segmented_must(dataset, churn=False)
    opts = SearchOptions(k=K, exact=True)
    for a, b in zip(flat.query(hybrid_queries, opts),
                    seg.query(hybrid_queries, opts)):
        assert_same(a, b)


# ----------------------------------------------------------------------
# Serving surfaces
# ----------------------------------------------------------------------
def test_service_engine_parity_under_churn(dataset, hybrid_queries):
    with MustService(
        segmented_must(dataset, churn=False),
        ServiceConfig(max_batch=8, max_wait_ms=1.0),
    ) as svc:
        def search(queries, options):
            return [svc.search(q, options) for q in queries]

        assert_engine_parity(search, hybrid_queries, k=K, l=L)
        ext = svc.insert(churn_chunk(seed=92))
        svc.mark_deleted(ext[:6])
        assert_engine_parity(search, hybrid_queries, k=K, l=L)
        svc.compact()
        assert_engine_parity(search, hybrid_queries, k=K, l=L)
        assert_engine_parity(search, hybrid_queries, k=K, exact=True)


@pytest.mark.parametrize("n_shards", [1, 2])
def test_sharded_engine_parity_under_churn(
    dataset, hybrid_queries, n_shards
):
    svc = ShardedService(segmented_must(dataset), n_shards=n_shards)
    try:
        def search(queries, options):
            return [svc.search(q, options=options) for q in queries]

        assert_engine_parity(search, hybrid_queries, k=K, l=L)
        assert_engine_parity(search, hybrid_queries, k=K, exact=True)
        ext = svc.insert(churn_chunk(seed=93))
        svc.mark_deleted(ext[:6])
        assert_engine_parity(search, hybrid_queries, k=K, l=L)
        svc.compact()
        assert_engine_parity(search, hybrid_queries, k=K, l=L)
        assert_engine_parity(search, hybrid_queries, k=K, exact=True)
    finally:
        svc.close()


# ----------------------------------------------------------------------
# Persistence: manifest v4 round-trip, v2 back-compat for dense-only
# ----------------------------------------------------------------------
def test_manifest_v4_roundtrip_bitwise(tmp_path, dataset, hybrid_queries):
    must = segmented_must(dataset)
    path = tmp_path / "hybrid_index"
    must.save_index(path)

    manifest = json.loads((path / MANIFEST_NAME).read_text())
    assert manifest["format"] == "must-segments-v4"
    assert manifest["format_version"] == 4

    fresh = MUST(
        MultiVectorSet([dataset.dense.copy()], sparse=dataset.sparse),
        weights=Weights([1.0]),
        builder=CHEAP_BUILDER,
    ).load_index(path)
    opts = SearchOptions(k=K, l=L)
    for a, b in zip(must.query(hybrid_queries, opts),
                    fresh.query(hybrid_queries, opts)):
        assert_same(a, b)
    for a, b in zip(
        must.query(hybrid_queries, SearchOptions(k=K, exact=True)),
        fresh.query(hybrid_queries, SearchOptions(k=K, exact=True)),
    ):
        assert_same(a, b)


def test_dense_only_archives_stay_v2(tmp_path, dataset):
    """No sparse plane → the manifest keeps the pre-sparse format, so
    archives remain byte-compatible with older library versions."""
    must = MUST(
        MultiVectorSet([dataset.dense.copy()]),
        weights=Weights([1.0]),
        builder=CHEAP_BUILDER,
        segment_policy=SegmentPolicy(seal_size=32, max_segments=8),
    ).build()
    rng = np.random.default_rng(13)
    must.insert(
        MultiVectorSet(
            [normalize_rows(rng.standard_normal((6, SHAPE["dim"]))
                            .astype(np.float32))]
        )
    )
    path = tmp_path / "dense_index"
    must.save_index(path)
    manifest = json.loads((path / MANIFEST_NAME).read_text())
    assert manifest["format"] == "must-segments-v2"
    assert manifest["format_version"] == 2


def test_insert_requires_matching_sparse_plane(dataset):
    must = segmented_must(dataset, churn=False)
    rng = np.random.default_rng(7)
    dense_only = MultiVectorSet(
        [normalize_rows(rng.standard_normal((4, SHAPE["dim"]))
                        .astype(np.float32))]
    )
    with pytest.raises(ValueError, match="sparse"):
        must.insert(dense_only)


# ----------------------------------------------------------------------
# Registry validation at the public constructors
# ----------------------------------------------------------------------
class TestRegistryValidation:
    def test_metrics_did_you_mean_at_construction(self, dataset):
        with pytest.raises(ValueError, match="cosine"):
            MultiVectorSet([dataset.dense], metrics=["cosin"])
        with pytest.raises(ValueError, match="cosine"):
            MUST(
                MultiVectorSet([dataset.dense]),
                weights=Weights([1.0]),
                metrics=["cosin"],
            )

    def test_sparse_engine_did_you_mean(self):
        with pytest.raises(ValueError, match="inverted"):
            SearchOptions(sparse_engine="invrted")
        with pytest.raises(ValueError, match="sparse engine"):
            SearchOptions(sparse_engine="wave")  # dense engine name

    def test_sparse_metric_did_you_mean(self, dataset):
        from repro.sparse.store import SparseStore

        with pytest.raises(ValueError, match="bm25"):
            SparseStore(dataset.sparse.csr, metric="bm52")

    def test_build_rejects_non_ip_metrics(self, dataset):
        must = MUST(
            MultiVectorSet([dataset.dense]),
            weights=Weights([1.0]),
            metrics=["cosine"],
        )
        with pytest.raises(ValueError, match="exact"):
            must.build()


# ----------------------------------------------------------------------
# Non-IP dense metrics: exact path vs an independent numpy reference
# ----------------------------------------------------------------------
@pytest.mark.parametrize("metrics", [("cosine", "l2"), ("ip", "cosine")])
def test_non_ip_exact_matches_numpy_reference(metrics):
    rng = np.random.default_rng(11)
    n, dims = 60, (12, 8)
    mats = [
        rng.standard_normal((n, d)).astype(np.float32) for d in dims
    ]
    weights = Weights([0.6, 0.4])
    must = MUST(
        MultiVectorSet([m.copy() for m in mats]),
        weights=weights,
        metrics=list(metrics),
    )
    q_arrays = [rng.standard_normal(d).astype(np.float32) for d in dims]
    res = must.query(
        Query(MultiVector.from_arrays(q_arrays)),
        SearchOptions(k=8, exact=True),
    )

    expect = np.zeros(n, dtype=np.float64)
    for w2, metric, q, mat in zip(
        weights.squared, metrics, q_arrays, mats
    ):
        if metric == "ip":
            # mixed-metric exact scoring routes ip through the store's
            # float32 BLAS kernel — mirror that, not a float64 matmul
            scores = (mat @ q.astype(np.float32)).astype(np.float64)
        else:
            scores = dense_score_rows(metric, q, mat)
        expect += float(w2) * scores
    order = np.lexsort((np.arange(n), -expect))[:8]
    np.testing.assert_array_equal(res.ids, order)
    np.testing.assert_allclose(
        res.similarities, expect[order], rtol=1e-12
    )
