"""Tests for NNDescent, pipeline components, and the fused index builder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.space import JointSpace
from repro.core.weights import Weights
from repro.index.base import GraphIndex
from repro.index.components import (
    angle_select,
    centroid_seed,
    ensure_connectivity,
    mrng_select,
    prune_one,
    rng_alpha_select,
    search_based_candidates,
    top_gamma_select,
    two_hop_candidates,
)
from repro.index.nndescent import graph_quality, nndescent, random_knn
from repro.index.pipeline import FusedIndexBuilder

from tests.conftest import random_multivector_set


@pytest.fixture(scope="module")
def space():
    return JointSpace(random_multivector_set(300, (12, 6), seed=21),
                      Weights([0.5, 0.5]))


class TestRandomKnn:
    def test_shape_and_no_self_loops(self):
        knn = random_knn(50, 8, rng=0)
        assert knn.shape == (50, 8)
        for v in range(50):
            assert v not in knn[v]

    def test_ids_in_range(self):
        knn = random_knn(30, 5, rng=1)
        assert knn.min() >= 0 and knn.max() < 30

    def test_k_too_large_rejected(self):
        with pytest.raises(ValueError):
            random_knn(5, 5)


class TestNNDescent:
    def test_quality_improves_with_iterations(self, space):
        """Tab. XI shape: quality grows with ε and is ≈1 by 3 iterations."""
        qualities = [
            graph_quality(space, nndescent(space, 10, iterations=it, seed=2))
            for it in (0, 1, 3)
        ]
        assert qualities[0] < qualities[1] <= qualities[2] + 0.02
        assert qualities[2] > 0.9

    def test_no_self_loops_after_refinement(self, space):
        knn = nndescent(space, 8, iterations=2, seed=2)
        for v in range(space.n):
            assert v not in knn[v]

    def test_deterministic(self, space):
        a = nndescent(space, 8, iterations=2, seed=5)
        b = nndescent(space, 8, iterations=2, seed=5)
        assert np.array_equal(a, b)

    def test_resume_from_init(self, space):
        base = nndescent(space, 8, iterations=1, seed=2)
        resumed = nndescent(space, 8, iterations=1, seed=2, init=base)
        assert graph_quality(space, resumed) >= graph_quality(space, base) - 0.02

    def test_zero_iterations_is_init(self, space):
        knn = nndescent(space, 8, iterations=0, seed=2)
        assert np.array_equal(knn, random_knn(space.n, 8, 2))


class TestCandidates:
    def test_two_hop_contains_direct_neighbors(self, space):
        knn = nndescent(space, 6, iterations=2, seed=3)
        cand, sims = two_hop_candidates(space, knn, max_candidates=40)
        for v in (0, 17, 100):
            row = set(cand[v][cand[v] >= 0].tolist())
            direct = set(knn[v].tolist())
            # Direct neighbours are candidates unless pushed out by closer
            # two-hop ones; require substantial overlap.
            assert len(row & direct) >= len(direct) // 2

    def test_two_hop_sorted_descending(self, space):
        knn = nndescent(space, 6, iterations=2, seed=3)
        cand, sims = two_hop_candidates(space, knn, max_candidates=40)
        for v in (0, 50):
            valid = sims[v][cand[v] >= 0]
            assert list(valid) == sorted(valid, reverse=True)

    def test_two_hop_excludes_self(self, space):
        knn = nndescent(space, 6, iterations=2, seed=3)
        cand, _ = two_hop_candidates(space, knn, max_candidates=40)
        for v in range(space.n):
            assert v not in cand[v]

    def test_search_based_candidates(self, space):
        knn = nndescent(space, 6, iterations=2, seed=3)
        entry = centroid_seed(space)
        cand, sims = search_based_candidates(
            space, knn, entry, max_candidates=20, beam=16
        )
        assert cand.shape == (space.n, 20)
        for v in (0, 10):
            assert v not in cand[v]
            valid = sims[v][cand[v] >= 0]
            assert list(valid) == sorted(valid, reverse=True)


class TestSelection:
    @pytest.fixture(scope="class")
    def cand_sims(self, space):
        knn = nndescent(space, 8, iterations=2, seed=3)
        return two_hop_candidates(space, knn, max_candidates=32)

    def test_mrng_respects_gamma(self, space, cand_sims):
        neighbors = mrng_select(space, *cand_sims, gamma=5)
        assert all(len(adj) <= 5 for adj in neighbors)

    def test_mrng_keeps_closest(self, space, cand_sims):
        cand, sims = cand_sims
        neighbors = mrng_select(space, cand, sims, gamma=5)
        for v in (0, 100, 250):
            assert cand[v][0] in neighbors[v]

    def test_lemma2_angle_at_least_60_degrees(self, space, cand_sims):
        """Lemma 2: MRNG-selected neighbour pairs subtend ≥ 60° at the vertex.

        Checked geometrically on the concatenated vectors (the proof's
        IP-as-side-length argument corresponds to the Euclidean geometry
        of the shared-norm concatenated space).
        """
        neighbors = mrng_select(space, *cand_sims, gamma=8)
        concat = space.concatenated.astype(np.float64)
        violations = 0
        checked = 0
        for v in range(0, space.n, 7):
            adj = neighbors[v]
            for i in range(len(adj)):
                for j in range(i + 1, len(adj)):
                    e1 = concat[adj[i]] - concat[v]
                    e2 = concat[adj[j]] - concat[v]
                    cos = e1 @ e2 / (np.linalg.norm(e1) * np.linalg.norm(e2))
                    checked += 1
                    if cos > 0.5 + 1e-6:  # angle < 60°
                        violations += 1
        assert checked > 50
        assert violations == 0

    def test_alpha_keeps_more_than_mrng(self, space, cand_sims):
        strict = mrng_select(space, *cand_sims, gamma=16)
        relaxed = rng_alpha_select(space, *cand_sims, gamma=16, alpha=1.4)
        assert sum(map(len, relaxed)) >= sum(map(len, strict))

    def test_alpha_one_equals_mrng(self, space, cand_sims):
        strict = mrng_select(space, *cand_sims, gamma=10)
        alpha1 = rng_alpha_select(space, *cand_sims, gamma=10, alpha=1.0)
        for a, b in zip(strict, alpha1):
            assert np.array_equal(a, b)

    def test_angle_select_respects_threshold(self, space, cand_sims):
        neighbors = angle_select(space, *cand_sims, gamma=8, min_angle_deg=60)
        concat = space.concatenated.astype(np.float64)
        for v in range(0, space.n, 11):
            adj = neighbors[v]
            for i in range(len(adj)):
                for j in range(i + 1, len(adj)):
                    e1 = concat[adj[i]] - concat[v]
                    e2 = concat[adj[j]] - concat[v]
                    cos = e1 @ e2 / (np.linalg.norm(e1) * np.linalg.norm(e2))
                    assert cos <= 0.5 + 1e-6

    def test_top_gamma_takes_prefix(self, cand_sims):
        cand, sims = cand_sims
        neighbors = top_gamma_select(cand, sims, gamma=4)
        for v in (0, 5):
            expected = cand[v][cand[v] >= 0][:4]
            assert np.array_equal(neighbors[v], expected)

    def test_prune_one_empty(self, space):
        out = prune_one(space.concatenated, space.weights.total,
                        np.empty(0, dtype=np.int64), np.empty(0), gamma=5)
        assert out.size == 0


class TestSeedAndConnectivity:
    def test_centroid_seed_is_most_central(self, space):
        seed = centroid_seed(space)
        c = space.concatenated
        centroid = c.mean(axis=0)
        assert np.argmax(c @ centroid) == seed

    def test_connectivity_reaches_all(self, space):
        # Pathological graph: no edges at all.
        neighbors = [np.empty(0, dtype=np.int32) for _ in range(space.n)]
        seed = centroid_seed(space)
        fixed = ensure_connectivity(space, neighbors, seed)
        reached = _bfs(fixed, seed)
        assert reached.all()

    def test_connectivity_preserves_existing_edges(self, space):
        knn = nndescent(space, 5, iterations=1, seed=4)
        neighbors = [knn[v] for v in range(space.n)]
        fixed = ensure_connectivity(space, neighbors, 0)
        for v in range(space.n):
            assert set(knn[v].tolist()) <= set(fixed[v].tolist())

    def test_connectivity_noop_when_connected(self, space):
        idx = FusedIndexBuilder(gamma=8, seed=1).build(space)
        before = sum(len(a) for a in idx.neighbors)
        fixed = ensure_connectivity(space, idx.neighbors, idx.seed_vertex)
        assert sum(len(a) for a in fixed) == before


def _bfs(neighbors, start):
    n = len(neighbors)
    seen = np.zeros(n, dtype=bool)
    stack = [start]
    seen[start] = True
    while stack:
        v = stack.pop()
        for u in neighbors[v]:
            if not seen[u]:
                seen[u] = True
                stack.append(int(u))
    return seen


class TestFusedIndexBuilder:
    def test_build_valid_graph(self, space):
        idx = FusedIndexBuilder(gamma=8, seed=1).build(space)
        idx.validate()
        assert idx.n == space.n
        assert idx.degree_stats()["max"] <= 8 + 1  # +1 connectivity bridges

    def test_reachability_from_seed(self, space):
        idx = FusedIndexBuilder(gamma=8, seed=1).build(space)
        assert _bfs(idx.neighbors, idx.seed_vertex).all()

    def test_deterministic_build(self, space):
        a = FusedIndexBuilder(gamma=8, seed=1).build(space)
        b = FusedIndexBuilder(gamma=8, seed=1).build(space)
        for x, y in zip(a.neighbors, b.neighbors):
            assert np.array_equal(x, y)
        assert a.seed_vertex == b.seed_vertex

    def test_meta_records_parameters(self, space):
        idx = FusedIndexBuilder(gamma=8, epsilon=2, seed=1).build(space)
        assert idx.meta["gamma"] == 8
        assert idx.meta["epsilon"] == 2
        assert idx.build_seconds > 0

    def test_selection_variants_build(self, space):
        for selection in ("mrng", "angle", "alpha", "top"):
            idx = FusedIndexBuilder(
                gamma=6, selection=selection, seed=1
            ).build(space)
            idx.validate()

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            FusedIndexBuilder(gamma=0)
        with pytest.raises(ValueError):
            FusedIndexBuilder(selection="bogus")
        with pytest.raises(ValueError):
            FusedIndexBuilder(candidate_source="bogus")

    def test_gamma_bounds_degree_growth(self, space):
        small = FusedIndexBuilder(gamma=4, seed=1).build(space)
        large = FusedIndexBuilder(gamma=16, seed=1).build(space)
        assert large.num_edges > small.num_edges


class TestGraphIndexContainer:
    def test_size_in_bytes(self, tiny_index):
        assert tiny_index.size_in_bytes() == (
            tiny_index.num_edges * 4 + (tiny_index.n + 1) * 8
        )

    def test_validate_rejects_self_loop(self, tiny_space):
        neighbors = [np.empty(0, dtype=np.int32) for _ in range(tiny_space.n)]
        neighbors[3] = np.array([3], dtype=np.int32)
        idx = GraphIndex(tiny_space, neighbors, seed_vertex=0)
        with pytest.raises(ValueError, match="self-loop"):
            idx.validate()

    def test_validate_rejects_out_of_range(self, tiny_space):
        neighbors = [np.empty(0, dtype=np.int32) for _ in range(tiny_space.n)]
        neighbors[0] = np.array([tiny_space.n + 5], dtype=np.int32)
        idx = GraphIndex(tiny_space, neighbors, seed_vertex=0)
        with pytest.raises(ValueError, match="out-of-range"):
            idx.validate()

    def test_save_load_roundtrip(self, tiny_index, tiny_space, tmp_path):
        path = tmp_path / "index.npz"
        tiny_index.save(path)
        loaded = GraphIndex.load(path, tiny_space)
        assert loaded.seed_vertex == tiny_index.seed_vertex
        assert loaded.name == tiny_index.name
        for a, b in zip(loaded.neighbors, tiny_index.neighbors):
            assert np.array_equal(a, b)

    def test_wrong_adjacency_length_rejected(self, tiny_space):
        with pytest.raises(ValueError):
            GraphIndex(tiny_space, [np.empty(0, dtype=np.int32)], 0)
