"""Tests for the six alternative proximity graphs (Fig. 10 zoo)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.multivector import MultiVectorSet
from repro.core.space import JointSpace
from repro.core.weights import Weights
from repro.index import BUILDERS, FlatIndex, joint_search
from repro.index.graphs.hnsw import HNSWBuilder, HNSWGraph
from repro.index.pipeline import FusedIndexBuilder
from repro.index.segments import SegmentedIndex, SegmentPolicy

from tests.conftest import random_multivector_set, random_query


@pytest.fixture(scope="module")
def space():
    return JointSpace(random_multivector_set(250, (8, 6), seed=55),
                      Weights([0.5, 0.5]))


@pytest.fixture(scope="module")
def queries():
    return [random_query((8, 6), seed=s) for s in range(15)]


def _reachable_fraction(index) -> float:
    n = index.n
    seen = np.zeros(n, dtype=bool)
    stack = [index.seed_vertex]
    seen[index.seed_vertex] = True
    while stack:
        v = stack.pop()
        for u in index.neighbors[v]:
            if not seen[u]:
                seen[u] = True
                stack.append(int(u))
    return float(seen.mean())


@pytest.mark.parametrize("name", sorted(BUILDERS))
class TestEveryBuilder:
    def test_structurally_valid(self, space, name):
        index = _build(space, name)
        index.validate()
        assert index.name == name
        assert index.build_seconds > 0

    def test_search_recall(self, space, queries, name):
        index = _build(space, name)
        flat = FlatIndex(space)
        hits = 0
        for q in queries:
            approx = joint_search(index, q, k=10, l=80)
            exact = flat.search(q, 10)
            hits += np.intersect1d(approx.ids, exact.ids).size
        assert hits / (10 * len(queries)) > 0.8, f"{name} recall too low"

    def test_mostly_reachable(self, space, name):
        index = _build(space, name)
        # KGraph has no connectivity repair (paper: it lacks it); the
        # others must reach everything from the seed.
        minimum = 0.8 if name == "kgraph" else 1.0
        assert _reachable_fraction(index) >= minimum


_CACHE: dict[str, object] = {}


def _build(space, name):
    if name not in _CACHE:
        builder_cls = BUILDERS[name]
        _CACHE[name] = builder_cls(seed=2).build(space)
    return _CACHE[name]


class TestHNSWSpecifics:
    def test_incremental_insert_grows_graph(self, space):
        """§IX dynamic updates: HNSW inserts points one at a time."""
        builder = HNSWBuilder(m=8, ef_construction=24, seed=3)
        graph = HNSWGraph()
        rng = np.random.default_rng(3)
        for v in range(60):
            builder.insert(space, graph, v, rng)
        assert graph.entry_point >= 0
        assert len(graph.layers[0]) == 60

    def test_levels_geometric(self, space):
        builder = HNSWBuilder(m=8, ef_construction=24, seed=3)
        index = builder.build(space)
        assert index.meta["levels"] >= 1
        # Most points live only on the base layer.
        assert index.meta["levels"] < 10


class TestIncrementalStructure:
    """Structural property tests for the §IX dynamic-update path: the
    graph must stay valid after *every* incremental insert and across
    every seal/compact transition (no self-loops, ids in range, seed
    vertex alive)."""

    def test_validate_after_every_hnsw_insert(self):
        full = random_multivector_set(50, (8, 6), seed=77)
        weights = Weights([0.5, 0.5])
        builder = HNSWBuilder(m=6, ef_construction=24, seed=9)
        graph = HNSWGraph()
        rng = np.random.default_rng(9)
        for v in range(50):
            prefix = JointSpace(
                MultiVectorSet([m[: v + 1] for m in full.matrices]), weights
            )
            builder.insert(prefix, graph, v, rng)
            index = builder.materialize(prefix, graph)
            index.validate()
            assert 0 <= index.seed_vertex <= v
            # Every inserted vertex except the first has a neighbour.
            if v > 0:
                assert index.num_edges > 0

    def test_validate_across_seal_and_compact_transitions(self):
        weights = Weights([0.5, 0.5])
        seg = SegmentedIndex(
            weights,
            builder=FusedIndexBuilder(gamma=6, seed=1),
            policy=SegmentPolicy(seal_size=12, max_segments=3,
                                 max_deleted_fraction=0.4,
                                 min_compact_size=20),
        )
        rng = np.random.default_rng(13)

        def everything_valid():
            for s in seg.searchable_segments():
                s.index.validate()
                deleted = s.index.deleted
                assert deleted is None or not deleted[s.index.seed_vertex]

        corpus = random_multivector_set(64, (8, 6), seed=21)
        for step in range(16):  # 4 per batch → seals fire mid-stream
            seg.insert(corpus.subset(np.arange(step * 4, step * 4 + 4)))
            everything_valid()
        assert seg.num_seals > 0
        seg.mark_deleted(np.arange(0, 40, 2))  # may trigger auto-compaction
        everything_valid()
        seg.compact()
        everything_valid()
        assert len(seg.sealed) == 1 and seg.sealed[0].index.deleted is None

    def test_validate_rejects_dead_seed(self):
        space = JointSpace(random_multivector_set(30, (8, 6), seed=3),
                           Weights([0.5, 0.5]))
        index = FusedIndexBuilder(gamma=6, seed=1).build(space)
        index.mark_deleted(np.array([index.seed_vertex]))
        with pytest.raises(ValueError, match="seed vertex"):
            index.validate()


class TestBuilderOrderings:
    def test_ours_not_slower_than_search_based_nsg(self, space):
        """Fig. 10(a) shape: the re-assembled pipeline builds faster than
        NSG's search-based construction."""
        ours = _build(space, "ours")
        nsg = _build(space, "nsg")
        assert ours.build_seconds <= nsg.build_seconds * 1.5

    def test_kgraph_has_full_degree(self, space):
        kgraph = _build(space, "kgraph")
        assert kgraph.degree_stats()["min"] == kgraph.degree_stats()["max"]

    def test_selection_graphs_are_sparser_than_kgraph(self, space):
        kgraph = _build(space, "kgraph")
        ours = _build(space, "ours")
        assert ours.num_edges < kgraph.num_edges
