"""Tests for the joint search (Algorithm 2): engines, Lemmas 3 & 4, knobs."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.space import JointSpace
from repro.core.weights import Weights
from repro.index.flat import FlatIndex
from repro.index.pipeline import FusedIndexBuilder
from repro.index.search import greedy_search_graph, joint_search

from tests.conftest import random_multivector_set, random_query


@pytest.fixture(scope="module")
def setup():
    space = JointSpace(random_multivector_set(400, (10, 6), seed=33),
                       Weights([0.4, 0.6]))
    index = FusedIndexBuilder(gamma=12, seed=1).build(space)
    flat = FlatIndex(space)
    queries = [random_query((10, 6), seed=s) for s in range(25)]
    return space, index, flat, queries


class TestJointSearchBasics:
    def test_returns_k_sorted_results(self, setup):
        _, index, _, queries = setup
        res = joint_search(index, queries[0], k=7, l=40)
        assert len(res) == 7
        assert list(res.similarities) == sorted(res.similarities, reverse=True)
        assert len(set(res.ids.tolist())) == 7

    def test_high_l_matches_exact(self, setup):
        space, index, flat, queries = setup
        hits = 0
        for q in queries:
            approx = joint_search(index, q, k=10, l=120)
            exact = flat.search(q, 10)
            hits += np.intersect1d(approx.ids, exact.ids).size
        assert hits / (10 * len(queries)) > 0.9

    def test_recall_increases_with_l(self, setup):
        space, index, flat, queries = setup
        recalls = []
        for l in (10, 40, 160):
            hit = 0
            for q in queries:
                approx = joint_search(index, q, k=10, l=l)
                exact = flat.search(q, 10)
                hit += np.intersect1d(approx.ids, exact.ids).size
            recalls.append(hit)
        assert recalls[0] <= recalls[1] <= recalls[2]

    def test_l_ge_n_is_exhaustive(self, setup):
        space, index, flat, queries = setup
        res = joint_search(index, queries[0], k=5, l=space.n + 10)
        exact = flat.search(queries[0], 5)
        assert np.array_equal(np.sort(res.ids), np.sort(exact.ids))

    def test_invalid_k_l(self, setup):
        _, index, _, queries = setup
        with pytest.raises(ValueError):
            joint_search(index, queries[0], k=0, l=10)
        with pytest.raises(ValueError):
            joint_search(index, queries[0], k=20, l=10)
        with pytest.raises(ValueError):
            joint_search(index, queries[0], k=1, l=10, engine="bogus")

    def test_stats_populated(self, setup):
        _, index, _, queries = setup
        res = joint_search(index, queries[0], k=5, l=30)
        assert res.stats.hops > 0
        assert res.stats.joint_evals >= 30
        assert res.stats.visited_vertices == res.stats.hops

    def test_deterministic_given_rng(self, setup):
        _, index, _, queries = setup
        a = joint_search(index, queries[0], k=5, l=30, rng=7)
        b = joint_search(index, queries[0], k=5, l=30, rng=7)
        assert np.array_equal(a.ids, b.ids)


class TestEngines:
    def test_heap_and_paper_agree(self, setup):
        """Both engines implement the same greedy routing; they agree on
        the returned results for the overwhelming majority of queries."""
        _, index, flat, queries = setup
        agree = 0
        for q in queries:
            heap = joint_search(index, q, k=10, l=60, engine="heap")
            paper = joint_search(index, q, k=10, l=60, engine="paper")
            agree += np.intersect1d(heap.ids, paper.ids).size
        assert agree / (10 * len(queries)) > 0.95

    def test_paper_engine_lemma3_monotone(self, setup):
        _, index, _, queries = setup
        for q in queries[:10]:
            joint_search(index, q, k=5, l=40, engine="paper",
                         check_monotone=True)

    def test_heap_engine_lemma3_monotone(self, setup):
        _, index, _, queries = setup
        for q in queries[:10]:
            joint_search(index, q, k=5, l=40, engine="heap",
                         check_monotone=True)


class TestLemma4Equivalence:
    def test_early_termination_identical_results(self, setup):
        """Lemma 4: the multi-vector optimisation never changes results."""
        _, index, _, queries = setup
        for engine in ("heap", "paper"):
            for q in queries:
                fast = joint_search(index, q, k=10, l=50, engine=engine,
                                    early_termination=False)
                pruned = joint_search(index, q, k=10, l=50, engine=engine,
                                      early_termination=True)
                assert np.array_equal(fast.ids, pruned.ids)
                assert np.allclose(
                    fast.similarities, pruned.similarities, atol=1e-5
                )

    def test_early_termination_saves_modality_evals(self, setup):
        _, index, _, queries = setup
        base = sum(
            joint_search(index, q, k=10, l=20).stats.modality_evals
            for q in queries
        )
        pruned = sum(
            joint_search(index, q, k=10, l=20,
                         early_termination=True).stats.modality_evals
            for q in queries
        )
        assert pruned <= base

    @settings(deadline=None, max_examples=15)
    @given(st.integers(0, 10_000), st.sampled_from([10, 25, 60]))
    def test_lemma4_property(self, setup, qseed, l):
        _, index, _, _ = setup
        q = random_query((10, 6), seed=qseed)
        fast = joint_search(index, q, k=5, l=l)
        pruned = joint_search(index, q, k=5, l=l, early_termination=True)
        assert np.array_equal(fast.ids, pruned.ids)


class TestQueryVariants:
    def test_single_modality_query(self, setup):
        space, index, flat, queries = setup
        q = queries[0].replace(1, None)
        res = joint_search(index, q, k=5, l=80)
        exact = flat.search(q, 5)
        assert np.intersect1d(res.ids, exact.ids).size >= 3

    def test_weight_override_changes_results(self, setup):
        _, index, _, queries = setup
        default = joint_search(index, queries[1], k=10, l=60)
        skewed = joint_search(index, queries[1], k=10, l=60,
                              weights=Weights([0.99, 0.01]))
        assert not np.array_equal(default.ids, skewed.ids)

    def test_weight_override_matches_exact(self, setup):
        space, index, flat, queries = setup
        override = Weights([0.8, 0.2])
        res = joint_search(index, queries[2], k=10, l=150, weights=override)
        exact = flat.search(queries[2], 10, weights=override)
        assert np.intersect1d(res.ids, exact.ids).size >= 8


class TestFlatIndex:
    def test_exact_results_sorted(self, setup):
        space, _, flat, queries = setup
        res = flat.search(queries[0], 8)
        full = space.query_all(queries[0])
        assert res.similarities[0] == pytest.approx(full.max(), abs=1e-6)
        assert list(res.similarities) == sorted(res.similarities, reverse=True)

    def test_stats_count_full_scan(self, setup):
        space, _, flat, queries = setup
        res = flat.search(queries[0], 5)
        assert res.stats.joint_evals == space.n
        assert res.stats.modality_evals == space.n * 2


class TestGreedySearchGraph:
    def test_finds_entry_at_least(self, setup):
        space, index, _, _ = setup
        ids, sims = greedy_search_graph(
            space.concatenated, index.neighbors, index.seed_vertex,
            space.concatenated[5], beam=10,
        )
        assert ids.size >= 1
        assert list(sims) == sorted(sims, reverse=True)

    def test_locates_existing_vector(self, setup):
        space, index, _, _ = setup
        found = 0
        for target in (3, 77, 200, 399):
            ids, _ = greedy_search_graph(
                space.concatenated, index.neighbors, index.seed_vertex,
                space.concatenated[target], beam=30,
            )
            found += int(target in ids[:5])
        assert found >= 3


class TestSearchResultContainer:
    def test_top_slices(self, setup):
        _, index, _, queries = setup
        res = joint_search(index, queries[0], k=10, l=40)
        top3 = res.top(3)
        assert np.array_equal(top3.ids, res.ids[:3])

    def test_stats_merge(self, setup):
        _, index, _, queries = setup
        a = joint_search(index, queries[0], k=5, l=20)
        b = joint_search(index, queries[1], k=5, l=20)
        total = a.stats.hops + b.stats.hops
        a.stats.merge(b.stats)
        assert a.stats.hops == total
