"""End-to-end integration tests: the paper's headline claims at test scale.

Each test runs a full pipeline (generate → encode → learn → index →
search → evaluate) and asserts a *shape* from the paper rather than an
absolute number.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    BruteForceMUST,
    JointEmbeddingSearch,
    MultiStreamedRetrieval,
)
from repro.core.framework import MUST
from repro.datasets import (
    EncoderCombo,
    encode_dataset,
    make_celeba,
    make_celeba_plus,
    make_imagetext,
    make_shopping,
    split_queries,
)
from repro.datasets.largescale import encode_largescale, exact_ground_truth
from repro.metrics import mean_hit_rate, mean_recall


def _pipeline(sem, combo, epochs=150):
    enc = encode_dataset(sem, combo, seed=0)
    train, test = split_queries(sem.num_queries, 0.5, seed=1)
    must = MUST.from_dataset(enc)
    anchors = [enc.queries[i] for i in train]
    positives = np.asarray([enc.ground_truth[i][0] for i in train])
    must.fit_weights(anchors, positives, epochs=epochs, learning_rate=0.25)
    must.build()
    queries = [enc.queries[i] for i in test]
    gt = [enc.ground_truth[i] for i in test]
    return enc, must, queries, gt


class TestHeadlineOrdering:
    """Paper abstract: MUST beats both baselines in accuracy."""

    @pytest.fixture(scope="class")
    def celeba_run(self):
        sem = make_celeba(num_identities=80, num_queries=80, seed=11)
        return _pipeline(sem, EncoderCombo("clip", ("encoding",)))

    def test_must_beats_je(self, celeba_run):
        enc, must, queries, gt = celeba_run
        must_r = mean_hit_rate(
            [must.search(q, k=10, l=100).ids for q in queries], gt, 10
        )
        je = JointEmbeddingSearch(enc.objects).build()
        je_r = mean_hit_rate(
            [je.search(q, k=10, l=100).ids for q in queries], gt, 10
        )
        assert must_r > je_r

    def test_must_beats_mr_at_top1(self, celeba_run):
        enc, must, queries, gt = celeba_run
        must_r = mean_hit_rate(
            [must.search(q, k=10, l=100).ids for q in queries], gt, 1
        )
        mr = MultiStreamedRetrieval(enc.objects).build()
        mr_r = max(
            mean_hit_rate(
                [mr.search(q, k=10, candidates_per_modality=b).ids
                 for q in queries], gt, 1,
            )
            for b in (50, 100, 200)
        )
        assert must_r >= mr_r

    def test_graph_search_tracks_exact_search(self, celeba_run):
        enc, must, queries, gt = celeba_run
        brute = BruteForceMUST(enc.objects, must.weights).build()
        approx = mean_hit_rate(
            [must.search(q, k=10, l=120).ids for q in queries], gt, 10
        )
        exact = mean_hit_rate(
            [brute.search(q, k=10).ids for q in queries], gt, 10
        )
        assert approx >= exact - 0.05


class TestLearnedWeightsGeneralise:
    """§VI-C: weights are query-independent — learned on one workload
    slice, they transfer to unseen queries of the same corpus."""

    def test_transfer_across_query_split(self):
        sem = make_shopping("t-shirt", num_queries=100, seed=13)
        enc, must, queries, gt = _pipeline(
            sem, EncoderCombo("tirg", ("encoding",))
        )
        learned = mean_hit_rate(
            [must.search(q, k=10, l=100).ids for q in queries], gt, 10
        )
        # Uniform weights as the no-learning control.
        control = MUST.from_dataset(enc).build()
        uniform = mean_hit_rate(
            [control.search(q, k=10, l=100).ids for q in queries], gt, 10
        )
        assert learned >= uniform - 0.02

    def test_shared_weights_across_categories(self):
        """Tab. XXI: Bottoms queries reuse T-shirt-learned weights well."""
        sem_t = make_shopping("t-shirt", num_queries=80, seed=13)
        _, must_t, _, _ = _pipeline(sem_t, EncoderCombo("tirg", ("encoding",)))
        sem_b = make_shopping("bottoms", num_queries=80, seed=13)
        enc_b = encode_dataset(sem_b, EncoderCombo("tirg", ("encoding",)), seed=0)
        cross = MUST(enc_b.objects, weights=must_t.weights).build()
        gt = enc_b.ground_truth
        r = mean_hit_rate(
            [cross.search(q, k=10, l=100).ids for q in enc_b.queries], gt, 10
        )
        assert r > 0.5


class TestModalityCount:
    """Tab. VIII shape: more modalities help MUST."""

    def test_recall_does_not_degrade_with_more_modalities(self):
        recalls = {}
        for m in (2, 4):
            sem = make_celeba_plus(
                num_modalities=m, num_identities=60, num_queries=60, seed=11
            )
            aux = ("encoding",) + ("resnet17", "resnet50")[: m - 2]
            _, must, queries, gt = _pipeline(sem, EncoderCombo("clip", aux))
            recalls[m] = mean_hit_rate(
                [must.search(q, k=10, l=100).ids for q in queries], gt, 1
            )
        assert recalls[4] >= recalls[2] - 0.05


class TestLargeScaleProtocol:
    """Fig. 6 protocol: Recall@10(10) against exact joint ground truth."""

    @pytest.fixture(scope="class")
    def run(self):
        sem = make_imagetext(n=1_500, num_queries=30, seed=23)
        enc = encode_largescale(sem)
        must = MUST.from_dataset(enc)
        positives = np.asarray([g[0] for g in enc.ground_truth[:15]])
        must.fit_weights(enc.queries[:15], positives, epochs=100,
                         learning_rate=0.2)
        must.build()
        return enc, must

    def test_high_l_reaches_high_recall(self, run):
        enc, must = run
        gt = exact_ground_truth(enc, must.weights, k=10)
        results = [must.search(q, k=10, l=200).ids for q in enc.queries]
        assert mean_recall(results, list(gt), 10) > 0.9

    def test_mr_saturates_below_must(self, run):
        enc, must = run
        gt = exact_ground_truth(enc, must.weights, k=10)
        must_r = mean_recall(
            [must.search(q, k=10, l=200).ids for q in enc.queries], list(gt), 10
        )
        mr = MultiStreamedRetrieval(enc.objects).build()
        mr_r = max(
            mean_recall(
                [mr.search(q, k=10, candidates_per_modality=b).ids
                 for q in enc.queries], list(gt), 10,
            )
            for b in (50, 150, 400)
        )
        assert must_r > mr_r

    def test_fewer_evals_than_brute_force(self, run):
        enc, must = run
        res = must.search(enc.queries[0], k=10, l=100)
        assert res.stats.joint_evals < enc.objects.n
