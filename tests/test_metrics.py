"""Tests for metrics: Recall@k(k') (Eq. 1), SME (Eq. 4), timing, ground truth."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.space import JointSpace
from repro.core.weights import Weights
from repro.metrics import (
    PercentileTracker,
    TimedRun,
    exact_top_k,
    exact_top_k_batch,
    hit_rate_at_k,
    mean_hit_rate,
    mean_recall,
    mean_sme,
    measure_qps,
    recall_at_k,
    sme,
)

from tests.conftest import random_multivector_set, random_query


class TestRecall:
    def test_perfect_recall(self):
        assert recall_at_k(np.array([1, 2, 3]), np.array([1, 2, 3]), 3) == 1.0

    def test_partial_recall(self):
        assert recall_at_k(np.array([1, 9, 8]), np.array([1, 2]), 3) == 0.5

    def test_zero_recall(self):
        assert recall_at_k(np.array([7, 8]), np.array([1]), 2) == 0.0

    def test_only_top_k_counted(self):
        # Ground truth at rank 3 does not count for k=2.
        assert recall_at_k(np.array([9, 8, 1]), np.array([1]), 2) == 0.0

    def test_eq1_denominator_is_gt_size(self):
        # |R ∩ G| / k' with k' = 4, one hit → 0.25.
        assert recall_at_k(np.array([1]), np.array([1, 2, 3, 4]), 1) == 0.25

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            recall_at_k(np.array([1]), np.array([1]), 0)

    def test_empty_ground_truth_rejected(self):
        with pytest.raises(ValueError):
            recall_at_k(np.array([1]), np.array([]), 1)

    def test_mean_recall(self):
        res = [np.array([1]), np.array([5])]
        gts = [np.array([1]), np.array([6])]
        assert mean_recall(res, gts, 1) == 0.5

    def test_mean_recall_batch_mismatch(self):
        with pytest.raises(ValueError):
            mean_recall([np.array([1])], [], 1)

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=10, unique=True),
           st.integers(1, 10))
    def test_recall_bounded(self, gt, k):
        result = np.arange(10)
        r = recall_at_k(result, np.array(gt), k)
        assert 0.0 <= r <= 1.0


class TestHitRate:
    def test_hit_in_top_k(self):
        assert hit_rate_at_k(np.array([5, 1, 9]), np.array([1, 2]), 2) == 1.0

    def test_miss(self):
        assert hit_rate_at_k(np.array([5, 9]), np.array([1]), 2) == 0.0

    def test_any_instance_counts(self):
        # Either ground-truth instance satisfies Recall@k(1).
        assert hit_rate_at_k(np.array([4]), np.array([3, 4]), 1) == 1.0

    def test_mean_hit_rate(self):
        res = [np.array([1]), np.array([9])]
        gts = [np.array([1, 2]), np.array([2])]
        assert mean_hit_rate(res, gts, 1) == 0.5


class TestSme:
    def test_identical_vectors_zero_error(self):
        v = np.array([0.6, 0.8])
        assert sme(v, v) == pytest.approx(0.0)

    def test_orthogonal_vectors_full_error(self):
        assert sme(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == pytest.approx(1.0)

    def test_mean_sme_uses_best_ground_truth(self):
        mat = np.array([[1.0, 0.0], [0.0, 1.0], [0.6, 0.8]])
        # result 2 vs gts {0,1}: best IP is max(0.6, 0.8) = 0.8.
        got = mean_sme(mat, [2], [np.array([0, 1])])
        assert got == pytest.approx(0.2)

    def test_mean_sme_perfect_retrieval(self):
        mat = np.eye(3)
        assert mean_sme(mat, [1], [np.array([1])]) == pytest.approx(0.0)


class TestGroundTruth:
    def test_exact_top_k_is_argmax(self):
        space = JointSpace(random_multivector_set(30, (4, 4), seed=3),
                           Weights([0.5, 0.5]))
        q = random_query((4, 4), seed=1)
        ids, sims = exact_top_k(space, q, 5)
        full = space.query_all(q)
        assert sims[0] == pytest.approx(full.max(), abs=1e-6)
        assert list(sims) == sorted(sims, reverse=True)
        assert np.array_equal(np.sort(ids), np.sort(np.argsort(-full)[:5]))

    def test_exact_top_k_batch(self):
        space = JointSpace(random_multivector_set(30, (4, 4), seed=3),
                           Weights([0.5, 0.5]))
        qs = [random_query((4, 4), seed=s) for s in range(3)]
        batch = exact_top_k_batch(space, qs, 4)
        assert len(batch) == 3
        for q, ids in zip(qs, batch):
            assert np.array_equal(ids, exact_top_k(space, q, 4)[0])


class TestTiming:
    def test_measure_qps_counts_queries(self):
        run = measure_qps(lambda q: q * 2, [1, 2, 3])
        assert run.num_queries == 3
        assert run.results == [2, 4, 6]
        assert run.qps > 0

    def test_warmup_not_included_in_results(self):
        calls = []
        run = measure_qps(lambda q: calls.append(q), [1, 2], warmup=1)
        assert run.num_queries == 2
        assert calls == [1, 1, 2]  # warmup re-runs the first query

    def test_mean_latency(self):
        run = TimedRun(results=[], elapsed=2.0, num_queries=4)
        assert run.mean_latency == pytest.approx(0.5)
        assert run.qps == pytest.approx(2.0)

    def test_zero_elapsed_rejected(self):
        # A zero-elapsed timer used to read as inf QPS — infinitely
        # fast — which every regression floor passes vacuously.
        run = TimedRun(results=[], elapsed=0.0, num_queries=1)
        with pytest.raises(ValueError, match="non-finite QPS"):
            run.qps

    def test_nan_elapsed_rejected(self):
        run = TimedRun(results=[], elapsed=float("nan"), num_queries=1)
        with pytest.raises(ValueError, match="non-finite QPS"):
            run.qps


class TestPercentileTracker:
    def test_percentiles_match_numpy(self):
        rng = np.random.default_rng(0)
        samples = rng.exponential(size=500)
        tracker = PercentileTracker()
        for x in samples:
            tracker.record(x)
        for q in (50, 95, 99):
            assert tracker.percentile(q) == pytest.approx(
                np.percentile(samples, q)
            )
        assert tracker.p50 <= tracker.p95 <= tracker.p99 <= tracker.max
        assert tracker.count == 500
        assert tracker.mean == pytest.approx(samples.mean())

    def test_empty_tracker_is_nan(self):
        tracker = PercentileTracker()
        assert np.isnan(tracker.p50)
        assert np.isnan(tracker.mean)
        assert np.isnan(tracker.max)
        assert tracker.summary() == {"count": 0}
        assert len(tracker) == 0

    def test_window_keeps_recent_but_counts_all(self):
        tracker = PercentileTracker(max_samples=10)
        for x in range(100):
            tracker.record(float(x))
        assert len(tracker) == 10
        assert tracker.count == 100
        # Percentiles reflect the sliding window (the last 10 values).
        assert tracker.percentile(0) == 90.0
        # Mean and max reflect everything ever recorded.
        assert tracker.mean == pytest.approx(np.mean(np.arange(100.0)))
        assert tracker.max == 99.0

    def test_merge_folds_samples_and_totals(self):
        a, b = PercentileTracker(), PercentileTracker()
        for x in (1.0, 2.0):
            a.record(x)
        for x in (3.0, 4.0):
            b.record(x)
        a.merge(b)
        assert a.count == 4
        assert a.max == 4.0
        assert a.mean == pytest.approx(2.5)
        assert a.percentile(100) == 4.0

    def test_summary_scale(self):
        tracker = PercentileTracker()
        tracker.record(0.5)
        summary = tracker.summary(scale=1e3)
        assert summary["p50"] == pytest.approx(500.0)
        assert summary["count"] == 1

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            PercentileTracker(max_samples=0)
