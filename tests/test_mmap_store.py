"""Memory-mapped cold tier: bit-parity, accounting, persistence, corruption.

The mmap contract is **bitwise**: for every compression backend, layout
(flat or segmented), job count, and serving tier, an index whose cold
exact tier lives in memory-mapped sidecar ``.npy`` files must answer
exact scans and refine reranks identically — ids *and* similarities —
to the same index with the cold tier resident.  Moving the cold tier
out of RAM may change resident bytes and wall clock, never a result.

Also covered here: ``memory_stats`` hot/cold/resident accounting, the
``must-segments-v3`` manifest round-trip (and v2 archives continuing to
load bit-identically), corpus-free serving via :meth:`MUST.from_saved`,
actionable errors for truncated/missing cold files and corrupt segment
archives, load atomicity, and the O(hot) sharded spawn protocol.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.framework import MUST
from repro.core.multivector import MultiVectorSet
from repro.core.query import Eq, Query, SearchOptions
from repro.core.weights import Weights
from repro.index.pipeline import FusedIndexBuilder
from repro.index.segments import MANIFEST_NAME, SegmentPolicy
from repro.store import GatherPlane, MmapPlane, ResidentPlane, spill_cold
from repro.store.base import make_store

from tests.conftest import random_multivector_set, random_query

DIMS = (16, 8)
WEIGHTS = Weights([0.4, 0.6])
CATEGORIES = np.array(["alpha", "beta", "gamma"])

#: cheap graph build — the exact/refine paths under test never walk the
#: graph beyond candidate generation, and mmap pairs build twice.
CHEAP_BUILDER = FusedIndexBuilder(gamma=8, epsilon=1, max_candidates=16)

COMPRESSIONS = ["float16", "int8", "pq"]


def _attributed_set(n: int, seed: int) -> MultiVectorSet:
    objects = random_multivector_set(n, DIMS, seed=seed)
    rng = np.random.default_rng(seed + 500)
    return objects.set_attributes(
        {
            "category": CATEGORIES[rng.integers(0, 3, n)],
            "price": rng.uniform(0.0, 100.0, n),
        }
    )


def _build_must(
    cold_storage: str,
    data_dir,
    compression: str,
    segmented: bool,
) -> MUST:
    """One built instance; segmented adds streamed rows and deletes."""
    store_options = {"pq_dims": 4} if compression == "pq" else {}
    kwargs = dict(
        weights=WEIGHTS,
        builder=CHEAP_BUILDER,
        compression=compression,
        store_options=store_options,
        cold_storage=cold_storage,
        data_dir=data_dir,
    )
    if segmented:
        kwargs["segment_policy"] = SegmentPolicy(
            seal_size=64, max_segments=8, max_deleted_fraction=0.9
        )
    must = MUST(_attributed_set(220, 3), **kwargs).build()
    if segmented:
        must.insert(_attributed_set(70, 9))
        must.mark_deleted(np.arange(0, 40, 7))
    return must


@pytest.fixture(scope="module")
def pair_of(tmp_path_factory):
    """Lazily built (resident, mmap) pairs keyed by (compression, seg)."""
    cache: dict = {}

    def get(compression: str, segmented: bool):
        key = (compression, segmented)
        if key not in cache:
            tag = f"{compression}_{'seg' if segmented else 'flat'}"
            data_dir = tmp_path_factory.mktemp(f"cold_{tag}")
            cache[key] = (
                _build_must("resident", None, compression, segmented),
                _build_must("mmap", data_dir, compression, segmented),
            )
        return cache[key]

    return get


@pytest.fixture(scope="module")
def queries():
    out = []
    for seed in range(10):
        vector = random_query(DIMS, seed=seed)
        if seed % 3 == 0:
            out.append(Query(vector, filter=Eq("category", "alpha")))
        elif seed % 3 == 1:
            out.append(Query(vector, k=4))
        else:
            out.append(Query(vector))
    return out


def assert_same_result(res, ref):
    assert np.array_equal(res.ids, ref.ids)
    assert np.array_equal(res.similarities, ref.similarities)


# ----------------------------------------------------------------------
# Bit-parity: mmap vs resident
# ----------------------------------------------------------------------
class TestParity:
    @pytest.mark.parametrize("segmented", [False, True])
    @pytest.mark.parametrize("compression", COMPRESSIONS)
    def test_query_parity(self, pair_of, queries, compression, segmented):
        """Exact scans and refine reranks are bit-identical."""
        resident, mapped = pair_of(compression, segmented)
        for plan in (
            SearchOptions(k=10, exact=True),
            SearchOptions(k=10, exact=True, refine=24),
            SearchOptions(k=10, l=64, refine=24),
        ):
            for query in queries:
                assert_same_result(
                    mapped.query(query, plan), resident.query(query, plan)
                )

    @pytest.mark.parametrize("n_jobs", [1, 4])
    def test_service_parity(self, pair_of, queries, n_jobs):
        """MustService answers match between mmap and resident."""
        resident, mapped = pair_of("pq", True)
        plan = SearchOptions(k=10, exact=True, refine=24)
        svc_res = resident.serve(n_jobs=n_jobs, max_wait_ms=0.5)
        svc_map = mapped.serve(n_jobs=n_jobs, max_wait_ms=0.5)
        try:
            for query in queries:
                assert_same_result(
                    svc_map.search(query, plan), svc_res.search(query, plan)
                )
        finally:
            svc_res.close()
            svc_map.close()

    @pytest.mark.parametrize("n_jobs", [1, 4])
    @pytest.mark.parametrize("compression", COMPRESSIONS)
    def test_sharded_parity(self, pair_of, queries, compression, n_jobs):
        """ShardedService answers match, and the mmap spawn ships O(hot)
        shared memory — the cold planes never cross the boundary."""
        resident, mapped = pair_of(compression, True)
        plan = SearchOptions(k=10, exact=True, refine=24)
        svc_res = resident.serve_sharded(n_shards=2, n_jobs=n_jobs)
        svc_map = mapped.serve_sharded(n_shards=2, n_jobs=n_jobs)
        try:
            assert svc_map.spawn_shm_bytes < svc_res.spawn_shm_bytes
            for query in queries:
                assert_same_result(
                    svc_map.search(query, plan), svc_res.search(query, plan)
                )
        finally:
            svc_res.close()
            svc_map.close()

    def test_flat_sharded_parity(self, pair_of, queries):
        """A non-segmented mmap template shards bit-identically too."""
        resident, mapped = pair_of("pq", False)
        plan = SearchOptions(k=10, exact=True, refine=24)
        svc_res = resident.serve_sharded(n_shards=3)
        svc_map = mapped.serve_sharded(n_shards=3)
        try:
            for query in queries:
                assert_same_result(
                    svc_map.search(query, plan), svc_res.search(query, plan)
                )
        finally:
            svc_res.close()
            svc_map.close()

    def test_compaction_preserves_parity(self, tmp_path, queries):
        """Streaming (segment-at-a-time) compaction equals the resident
        gather-everything compaction bit for bit."""
        resident = _build_must("resident", None, "pq", True)
        mapped = _build_must("mmap", tmp_path, "pq", True)
        resident.compact()
        mapped.compact()
        plan = SearchOptions(k=10, exact=True, refine=24)
        for query in queries:
            assert_same_result(
                mapped.query(query, plan), resident.query(query, plan)
            )


# ----------------------------------------------------------------------
# Memory accounting
# ----------------------------------------------------------------------
class TestAccounting:
    def test_resident_bytes_split_by_tier(self, pair_of):
        resident, mapped = pair_of("pq", True)
        stats_res = resident.memory_stats()
        stats_map = mapped.memory_stats()
        # Same logical corpus, same hot codes — only residency differs.
        assert stats_map["hot_bytes"] == stats_res["hot_bytes"]
        assert stats_map["cold_bytes"] == stats_res["cold_bytes"]
        assert (
            stats_res["resident_bytes"]
            == stats_res["hot_bytes"] + stats_res["cold_bytes"]
        )
        assert stats_map["resident_bytes"] < stats_res["resident_bytes"]

    def test_mmap_cold_tier_is_fully_nonresident(self, pair_of):
        """Every mapped cold byte leaves RAM: resident == hot exactly.
        (The ≥4× corpus-scale reduction gate lives in
        ``benchmarks/bench_mmap_qps.py``, where per-segment codebook
        overhead amortises; at test scale it dominates.)"""
        _, mapped = pair_of("pq", True)
        stats = mapped.memory_stats()
        assert stats["cold_bytes"] > 0
        assert stats["resident_bytes"] == stats["hot_bytes"]


# ----------------------------------------------------------------------
# Persistence: v3 manifests, v2 migration, corpus-free serving
# ----------------------------------------------------------------------
class TestPersistence:
    def test_mmap_save_writes_v3_and_roundtrips(
        self, pair_of, queries, tmp_path
    ):
        resident, mapped = pair_of("pq", True)
        out = tmp_path / "saved_v3"
        mapped.save_index(out)
        manifest = json.loads((out / MANIFEST_NAME).read_text())
        assert manifest["format"] == "must-segments-v3"
        assert manifest["format_version"] == 3
        assert manifest["cold_storage"] == "mmap"
        mapped_entries = [
            e for e in manifest["segments"] if e.get("storage") == "mmap"
        ]
        assert mapped_entries, "no segment recorded mmap storage"
        for entry in mapped_entries:
            for name in entry["cold_files"]:
                assert (out / name).exists()
        loaded = MUST.from_saved(out)
        plan = SearchOptions(k=10, exact=True, refine=24)
        for query in queries:
            assert_same_result(
                loaded.query(query, plan), resident.query(query, plan)
            )
        # The reload serves from the saved cold files, not from RAM.
        stats = loaded.memory_stats()
        assert stats["resident_bytes"] < stats["hot_bytes"] + stats["cold_bytes"]

    def test_resident_save_stays_v2_and_migrates(
        self, pair_of, queries, tmp_path
    ):
        """Resident archives keep the v2 format byte-for-byte, and the
        v3-aware reader loads them bit-identically (the migration)."""
        resident, _ = pair_of("pq", True)
        out = tmp_path / "saved_v2"
        resident.save_index(out)
        manifest = json.loads((out / MANIFEST_NAME).read_text())
        assert manifest["format"] == "must-segments-v2"
        assert manifest["format_version"] == 2
        assert "cold_storage" not in manifest
        loaded = MUST.from_saved(out)
        assert loaded.cold_storage == "resident"
        plan = SearchOptions(k=10, exact=True, refine=24)
        for query in queries:
            assert_same_result(
                loaded.query(query, plan), resident.query(query, plan)
            )

    def test_from_saved_needs_no_corpus(self, pair_of, tmp_path):
        _, mapped = pair_of("pq", True)
        out = tmp_path / "serving_copy"
        mapped.save_index(out)
        loaded = MUST.from_saved(out)
        # Corpus-bound stages are refused with a pointed error …
        with pytest.raises(ValueError, match="single-graph archives|corpus"):
            MUST.from_saved(tmp_path / "definitely_missing")
        # … but writes and reads work on the placeholder-corpus instance.
        ids = loaded.insert(_attributed_set(5, 77))
        assert ids.size == 5
        result = loaded.query(
            random_query(DIMS, seed=2), SearchOptions(k=5, exact=True)
        )
        assert result.ids.size == 5


# ----------------------------------------------------------------------
# Corruption and atomicity
# ----------------------------------------------------------------------
class TestCorruption:
    @pytest.fixture()
    def saved(self, tmp_path):
        must = _build_must("mmap", tmp_path / "cold", "pq", True)
        out = tmp_path / "saved"
        must.save_index(out)
        return out

    def _one_cold_file(self, saved):
        files = sorted(saved.glob("*.cold_0.npy"))
        assert files
        return files[0]

    def test_truncated_cold_file_fails_loudly(self, saved):
        victim = self._one_cold_file(saved)
        data = victim.read_bytes()
        victim.write_bytes(data[:-64])
        with pytest.raises(ValueError, match="truncated"):
            MUST.from_saved(saved)

    def test_missing_cold_file_fails_loudly(self, saved):
        victim = self._one_cold_file(saved)
        victim.unlink()
        with pytest.raises(FileNotFoundError, match=victim.name):
            MUST.from_saved(saved)

    def test_corrupt_segment_archive_fails_loudly(self, saved):
        victim = sorted(saved.glob("segment_*.npz"))[0]
        victim.write_bytes(b"this is not a zip archive")
        with pytest.raises(ValueError, match="corrupt or truncated"):
            MUST.from_saved(saved)

    def test_failed_load_leaves_instance_unchanged(self, saved, queries):
        """load_index is atomic: a corrupt save raises and the instance
        keeps serving its previous index, bit-identically."""
        must = _build_must("resident", None, "pq", True)
        plan = SearchOptions(k=10, exact=True, refine=24)
        before = [must.query(q, plan) for q in queries]
        segments_before = must._segments
        victim = self._one_cold_file(saved)
        victim.write_bytes(victim.read_bytes()[:-64])
        with pytest.raises(ValueError):
            must.load_index(saved)
        assert must._segments is segments_before
        for query, ref in zip(queries, before):
            assert_same_result(must.query(query, plan), ref)


# ----------------------------------------------------------------------
# Plane primitives
# ----------------------------------------------------------------------
class TestPlanes:
    def _store(self, n=50, seed=0):
        rng = np.random.default_rng(seed)
        mats = [rng.standard_normal((n, d)).astype(np.float32) for d in DIMS]
        return make_store("pq", mats, pq_dims=4), mats

    def test_spill_cold_is_bitwise(self, tmp_path):
        store, mats = self._store()
        spilled = spill_cold(store, tmp_path, "seg_000000")
        plane = spilled.cold_plane
        assert isinstance(plane, MmapPlane)
        assert plane.resident_bytes() == 0
        idx = np.array([3, 3, 0, 49, 17])
        for i, mat in enumerate(mats):
            assert np.array_equal(np.asarray(plane.modality(i)), mat)
            assert np.array_equal(plane.rows(i, idx), mat[idx])

    def test_gather_plane_routes_rows(self, tmp_path):
        store, mats = self._store()
        mapped = spill_cold(store, tmp_path, "seg_000000").cold_plane
        rng = np.random.default_rng(1)
        tail = [
            rng.standard_normal((7, d)).astype(np.float32) for d in DIMS
        ]
        src = np.array([0, 1, 0, 1, 0], dtype=np.int64)
        row = np.array([10, 2, 0, 6, 49], dtype=np.int64)
        plane = GatherPlane([mapped, ResidentPlane(tail)], src, row)
        for i in range(len(DIMS)):
            got = plane.modality(i)
            for j in range(src.size):
                source = mats[i] if src[j] == 0 else tail[i]
                assert np.array_equal(got[j], source[row[j]])
        assert plane.nbytes() == 5 * 4 * sum(DIMS)

    def test_mmap_plane_validates_eagerly(self, tmp_path):
        store, _ = self._store()
        plane = spill_cold(store, tmp_path, "seg_000000").cold_plane
        path = plane.paths[0]
        data = path.read_bytes()
        path.write_bytes(data[:-16])
        with pytest.raises(ValueError, match="truncated"):
            MmapPlane(plane.paths)
        path.unlink()
        with pytest.raises(FileNotFoundError):
            MmapPlane(plane.paths)
