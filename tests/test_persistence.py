"""Save/load round-trip coverage: legacy single-graph archives and the
segmented manifest, plus the single-read regression for stored weights."""

from __future__ import annotations

import numpy as np
import pytest

import repro.core.framework as framework_mod
from repro.core.framework import MUST
from repro.core.weights import Weights
from repro.index.pipeline import FusedIndexBuilder
from repro.index.segments import SegmentPolicy
from repro.utils.io import load_arrays

from tests.conftest import random_multivector_set, random_query

DIMS = (8, 6)


def _built_must(seed: int = 1, n: int = 120, weights=None) -> MUST:
    must = MUST(
        random_multivector_set(n, DIMS, seed=seed),
        weights=weights or Weights([0.4, 0.6]),
        builder=FusedIndexBuilder(gamma=8, seed=2),
        segment_policy=SegmentPolicy(seal_size=16, max_segments=4),
    )
    return must.build()


def _extra(n: int, seed: int):
    from repro.core.multivector import MultiVectorSet, normalize_rows

    rng = np.random.default_rng(seed)
    return MultiVectorSet(
        [normalize_rows(rng.standard_normal((n, d)).astype(np.float32))
         for d in DIMS]
    )


class TestLegacyRoundtrip:
    def test_graph_and_weights_survive(self, tmp_path):
        must = _built_must()
        must.mark_deleted(np.array([3, 4, 5]))
        path = tmp_path / "index.npz"
        must.save_index(path)

        fresh = MUST(must.objects, weights=Weights([0.5, 0.5]))
        fresh.load_index(path)
        assert fresh.weights == must.weights  # stored weights win
        assert fresh.index.num_active == must.index.num_active
        q = random_query(DIMS, seed=9)
        a = must.search(q, k=10, l=60, rng=0)
        b = fresh.search(q, k=10, l=60, rng=0)
        np.testing.assert_array_equal(a.ids, b.ids)
        np.testing.assert_array_equal(a.similarities, b.similarities)

    def test_load_reads_archive_exactly_once(self, tmp_path, monkeypatch):
        """Regression: stored weights used to trigger a second
        ``GraphIndex.load`` (and hence a second disk read) to rebind the
        refreshed space; the archive must now be opened exactly once."""
        must = _built_must(weights=Weights([0.3, 0.7]))
        path = tmp_path / "index.npz"
        must.save_index(path)

        opens = {"count": 0}

        def counting_load(p):
            opens["count"] += 1
            return load_arrays(p)

        monkeypatch.setattr(framework_mod, "load_arrays", counting_load)
        # Different current weights → the stored ones must be installed,
        # historically the path that double-read the file.
        fresh = MUST(must.objects, weights=Weights([0.5, 0.5]))
        fresh.load_index(path)
        assert opens["count"] == 1
        assert fresh.weights == Weights([0.3, 0.7])
        # The rebind is real: the loaded graph scores under stored weights.
        q = random_query(DIMS, seed=4)
        a = must.search(q, k=5, l=50, rng=0)
        b = fresh.search(q, k=5, l=50, rng=0)
        np.testing.assert_array_equal(a.ids, b.ids)


class TestSegmentedRoundtrip:
    def _streamed(self) -> MUST:
        must = _built_must(n=60)
        must.insert(_extra(20, seed=5))   # seals (seal_size=16)
        must.insert(_extra(7, seed=6))    # stays in the delta
        must.mark_deleted(np.array([2, 61, 82]))  # sealed + delta rows
        return must

    def test_full_state_survives(self, tmp_path):
        must = self._streamed()
        path = tmp_path / "segidx"
        must.save_index(path)

        fresh = MUST(must.objects, weights=Weights([0.5, 0.5]))
        fresh.load_index(path)
        assert fresh.is_segmented
        assert fresh.weights == must.weights
        before, after = must.segments.describe(), fresh.segments.describe()
        assert before == after
        np.testing.assert_array_equal(
            fresh.segments.active_ext_ids(), must.segments.active_ext_ids()
        )
        for seed in range(5):
            q = random_query(DIMS, seed=seed)
            a, b = must.search(q, k=10, exact=True), fresh.search(
                q, k=10, exact=True
            )
            np.testing.assert_array_equal(a.ids, b.ids)
            np.testing.assert_array_equal(a.similarities, b.similarities)
            g1 = must.search(q, k=10, l=60, rng=3)
            g2 = fresh.search(q, k=10, l=60, rng=3)
            np.testing.assert_array_equal(g1.ids, g2.ids)
            np.testing.assert_array_equal(g1.similarities, g2.similarities)

    def test_deletion_bitsets_survive(self, tmp_path):
        must = self._streamed()
        path = tmp_path / "segidx"
        must.save_index(path)
        fresh = MUST(must.objects).load_index(path)
        doomed = {2, 61, 82}
        for seed in range(4):
            res = fresh.search(random_query(DIMS, seed=seed), k=20, l=87)
            assert not (set(res.ids.tolist()) & doomed)

    def test_streaming_resumes_after_load(self, tmp_path):
        must = self._streamed()
        path = tmp_path / "segidx"
        must.save_index(path)
        fresh = MUST(must.objects).load_index(path)
        # The id allocator survives: new ids continue after the old ones.
        ext = fresh.insert(_extra(3, seed=7))
        np.testing.assert_array_equal(ext, np.arange(87, 90))
        # And the reloaded delta HNSW accepts the inserts (searchable).
        res = fresh.search(random_query(DIMS, seed=1), k=10, l=60)
        assert len(res) == 10

    def test_missing_segment_file_fails_clearly(self, tmp_path):
        must = self._streamed()
        path = tmp_path / "segidx"
        must.save_index(path)
        victim = sorted(path.glob("segment_*.npz"))[0]
        victim.unlink()
        fresh = MUST(must.objects)
        with pytest.raises(FileNotFoundError, match=victim.name):
            fresh.load_index(path)

    def test_directory_without_manifest_fails_clearly(self, tmp_path):
        empty = tmp_path / "not_an_index"
        empty.mkdir()
        with pytest.raises(FileNotFoundError, match="manifest"):
            MUST(random_multivector_set(10, DIMS, seed=0)).load_index(empty)
