"""Typed Query API tests: SearchOptions validation, the Filter DSL,
attribute tables, legacy-shim parity, and the unified ``l`` clamp.

The headline contracts pinned here:

* legacy kwarg entry points (``MUST.search`` / ``batch_search`` /
  ``MustService.submit``) emit a ``DeprecationWarning`` and answer
  **bit-identically** to the typed ``MUST.query`` path;
* unknown keyword names raise immediately with a did-you-mean hint (a
  misspelled ``early_terminatoin=`` used to be silently swallowed);
* ``SearchOptions`` range errors name the offending field;
* ``l`` is clamped to the corpus size once, in
  ``SearchOptions.resolve``, on the single-graph *and* segmented paths.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core.attributes import AttributeTable
from repro.core.framework import MUST
from repro.core.multivector import MultiVectorSet
from repro.core.query import (
    And,
    Eq,
    In,
    Not,
    Or,
    Query,
    Range,
    SearchOptions,
)
from repro.core.weights import Weights
from repro.index.segments import SegmentPolicy
from repro.service import MustService, ServiceConfig

from tests.conftest import random_multivector_set, random_query

DIMS = (16, 8)
WEIGHTS = Weights([0.4, 0.6])


def _attributed_set(n: int, seed: int = 0) -> MultiVectorSet:
    objects = random_multivector_set(n, DIMS, seed=seed)
    rng = np.random.default_rng(seed + 1000)
    objects.set_attributes(
        {
            "category": np.array(["alpha", "beta", "gamma"])[
                rng.integers(0, 3, n)
            ],
            "price": rng.uniform(0.0, 100.0, n),
            "year": rng.integers(2018, 2024, n),
        }
    )
    return objects


@pytest.fixture(scope="module")
def built_must() -> MUST:
    return MUST(_attributed_set(240), weights=WEIGHTS).build()


@pytest.fixture(scope="module")
def queries():
    return [random_query(DIMS, seed=s) for s in range(8)]


def assert_same_result(res, ref):
    assert np.array_equal(res.ids, ref.ids)
    assert np.array_equal(res.similarities, ref.similarities)


# ----------------------------------------------------------------------
# SearchOptions
# ----------------------------------------------------------------------
class TestSearchOptions:
    @pytest.mark.parametrize(
        "field, kwargs",
        [
            ("k", {"k": 0}),
            ("k", {"k": "ten"}),
            ("l", {"l": 0}),
            ("refine", {"refine": 0}),
            ("engine", {"engine": "warp"}),
            ("exact", {"exact": 1}),
            ("early_termination", {"early_termination": "yes"}),
            ("n_jobs", {"n_jobs": 1.5}),
            ("check_monotone", {"check_monotone": 2}),
        ],
    )
    def test_range_errors_name_the_field(self, field, kwargs):
        with pytest.raises(ValueError, match=f"SearchOptions.{field}"):
            SearchOptions(**kwargs)

    def test_unknown_kwarg_suggests_fix(self):
        with pytest.raises(TypeError, match="early_termination"):
            SearchOptions.from_kwargs(early_terminatoin=True)
        with pytest.raises(TypeError, match="unknown search option"):
            SearchOptions.from_kwargs(bogus=1)

    def test_resolve_clamps_l_to_corpus(self):
        opts = SearchOptions(k=5, l=100)
        assert opts.resolve(40).l == 40
        assert opts.resolve(1000).l == 100
        assert opts.resolve(1000) is opts  # no-op returns self

    def test_updated_revalidates(self):
        opts = SearchOptions(k=5)
        assert opts.updated(k=7).k == 7
        with pytest.raises(ValueError, match="SearchOptions.k"):
            opts.updated(k=0)

    def test_exact_with_large_k_needs_no_l(self):
        # l is a graph-path knob; exact plans with k > l stay valid.
        SearchOptions(k=500, exact=True)


class TestQueryObject:
    def test_validates_vector_type(self):
        with pytest.raises(ValueError, match="Query.vector"):
            Query(vector=np.zeros(4, dtype=np.float32))

    def test_validates_k_and_weights(self, queries):
        with pytest.raises(ValueError, match="Query.k"):
            Query(vector=queries[0], k=0)
        with pytest.raises(ValueError, match="Query.weights"):
            Query(vector=queries[0], weights=[0.5, 0.5])
        with pytest.raises(ValueError, match="Query.filter"):
            Query(vector=queries[0], filter="category == 'a'")

    def test_per_query_k_override(self, built_must, queries):
        res = built_must.query(
            Query(queries[0], k=3), SearchOptions(k=10, exact=True)
        )
        assert len(res.ids) == 3

    def test_per_query_k_exceeding_l_widens_both_layouts(self, queries):
        """A Query.k override larger than the wave l widens the result
        set instead of erroring — identically on the single-graph and
        segmented layouts."""
        flat = MUST(_attributed_set(200, seed=13), weights=WEIGHTS).build()
        seg = MUST(
            _attributed_set(150, seed=13),
            weights=WEIGHTS,
            segment_policy=SegmentPolicy(seal_size=48, max_segments=8),
        ).build()
        seg.insert(_attributed_set(50, seed=14))
        for must in (flat, seg):
            res = must.query(
                Query(queries[0], k=60), SearchOptions(k=5, l=20)
            )
            assert len(res.ids) == 60

    def test_explicit_l_below_k_still_raises(self, built_must, queries):
        """resolve()'s l floor covers only the tiny-corpus corner — an
        explicit l < k stays a loud error on typed and legacy paths."""
        with pytest.raises(ValueError, match="at least k"):
            built_must.query(
                Query(queries[0]), SearchOptions(k=50, l=10)
            )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ValueError, match="at least k"):
                built_must.search(queries[0], k=50, l=10)
        # exact plans ignore l entirely
        res = built_must.query(
            Query(queries[0]), SearchOptions(k=50, l=10, exact=True)
        )
        assert len(res.ids) == 50

    def test_per_query_weights_match_legacy_override(self, built_must, queries):
        override = Weights([0.9, 0.1])
        typed = built_must.query(
            Query(queries[0], weights=override), SearchOptions(k=5)
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = built_must.search(queries[0], k=5, weights=override)
        assert_same_result(typed, legacy)


# ----------------------------------------------------------------------
# Attribute table + Filter DSL
# ----------------------------------------------------------------------
class TestAttributeTable:
    def test_column_lengths_must_align(self):
        with pytest.raises(ValueError, match="all columns must align"):
            AttributeTable({"a": np.arange(4), "b": np.arange(5)})

    def test_unknown_field_lists_available(self):
        table = AttributeTable({"price": np.arange(3)})
        with pytest.raises(ValueError, match="price"):
            table.column("prize")

    def test_mixed_object_column_rejected(self):
        with pytest.raises(ValueError, match="mixed/object"):
            AttributeTable({"a": np.array([1, "x", None], dtype=object)})

    def test_subset_and_concat_roundtrip(self):
        table = AttributeTable(
            {"a": np.arange(6), "b": np.array(list("xyzxyz"))}
        )
        front, back = table.subset(np.arange(3)), table.subset(np.arange(3, 6))
        merged = AttributeTable.concat([front, back])
        assert np.array_equal(merged.column("a"), table.column("a"))
        assert np.array_equal(merged.column("b"), table.column("b"))
        with pytest.raises(ValueError, match="different"):
            AttributeTable.concat(
                [front, AttributeTable({"a": np.arange(3)})]
            )

    def test_array_roundtrip(self):
        table = AttributeTable(
            {"a": np.arange(4), "tag": np.array(list("abcd"))}
        )
        back = AttributeTable.from_arrays(table.to_arrays())
        assert back.fields == table.fields
        assert np.array_equal(back.column("tag"), table.column("tag"))
        assert AttributeTable.from_arrays({"unrelated": np.arange(2)}) is None

    def test_set_attributes_validates_row_count(self):
        objects = random_multivector_set(10, DIMS, seed=0)
        with pytest.raises(ValueError, match="covers 4 objects"):
            objects.set_attributes({"a": np.arange(4)})

    def test_subset_slices_attributes(self):
        objects = _attributed_set(20, seed=3)
        sub = objects.subset(np.array([3, 7, 11]))
        assert np.array_equal(
            sub.attributes.column("price"),
            objects.attributes.column("price")[[3, 7, 11]],
        )


class TestFilterDSL:
    @pytest.fixture(scope="class")
    def table(self):
        return AttributeTable(
            {
                "cat": np.array(["a", "b", "a", "c", "b"]),
                "price": np.array([10.0, 20.0, 30.0, 40.0, 50.0]),
            }
        )

    def test_eq(self, table):
        assert Eq("cat", "a").mask(table).tolist() == [
            True, False, True, False, False,
        ]

    def test_in(self, table):
        assert In("cat", ("a", "c")).mask(table).tolist() == [
            True, False, True, True, False,
        ]
        with pytest.raises(ValueError, match="at least one value"):
            In("cat", ())

    def test_range_bounds(self, table):
        assert Range("price", low=20.0, high=40.0).mask(table).tolist() == [
            False, True, True, True, False,
        ]
        assert Range("price", low=30.0).mask(table).tolist() == [
            False, False, True, True, True,
        ]
        with pytest.raises(ValueError, match="at least one of"):
            Range("price")

    def test_boolean_composition(self, table):
        flt = (Eq("cat", "a") | Eq("cat", "b")) & ~Range("price", high=15.0)
        assert flt.mask(table).tolist() == [False, True, True, False, True]
        assert And(Eq("cat", "a"), Eq("cat", "a")).mask(table).sum() == 2
        assert Or(Eq("cat", "a"), Eq("cat", "c")).mask(table).sum() == 3
        assert Not(Eq("cat", "a")).mask(table).sum() == 3

    def test_unknown_field_is_actionable(self, table):
        with pytest.raises(ValueError, match="unknown attribute field"):
            Eq("colour", "red").mask(table)

    def test_filter_without_table_is_actionable(self, queries):
        must = MUST(
            random_multivector_set(60, DIMS, seed=4), weights=WEIGHTS
        ).build()
        with pytest.raises(ValueError, match="no attribute table"):
            must.query(
                Query(queries[0], filter=Eq("cat", "a")),
                SearchOptions(k=3, exact=True),
            )


# ----------------------------------------------------------------------
# Legacy shims: rejection, deprecation, bit-parity
# ----------------------------------------------------------------------
class TestLegacyShims:
    def test_search_rejects_unknown_kwargs(self, built_must, queries):
        with pytest.raises(TypeError, match="early_termination"):
            built_must.search(queries[0], k=5, early_terminatoin=True)

    def test_batch_search_rejects_unknown_kwargs(self, built_must, queries):
        with pytest.raises(TypeError, match="did you mean 'engine'"):
            built_must.batch_search(queries[:2], k=5, enginee="heap")

    def test_service_submit_rejects_unknown_kwargs(self, built_must, queries):
        with MustService(built_must, ServiceConfig(max_batch=2)) as svc:
            with pytest.raises(TypeError, match="refine"):
                svc.submit(queries[0], k=5, refinee=2)

    def test_service_submit_rejects_per_request_n_jobs(
        self, built_must, queries
    ):
        with MustService(built_must, ServiceConfig(max_batch=2)) as svc:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                with pytest.raises(ValueError, match="ServiceConfig"):
                    svc.submit(queries[0], k=5, n_jobs=4)
            # ... and just as loudly on the typed path (silently running
            # sequentially would be the silent-swallow this PR removes).
            with pytest.raises(ValueError, match="ServiceConfig"):
                svc.submit(Query(queries[0]), SearchOptions(k=5, n_jobs=4))

    def test_bad_filter_does_not_poison_wave_mates(self, built_must, queries):
        """One request's malformed filter fails through its own future;
        the other requests coalesced into the same exact wave still get
        their answers (per-request containment)."""
        svc = MustService(
            built_must,
            ServiceConfig(max_batch=8, max_wait_ms=5.0),
            start=False,  # queue both first, so they share one wave
        )
        try:
            bad = svc.submit(
                Query(queries[0], filter=Eq("no_such_field", 1)),
                SearchOptions(k=5, exact=True),
            )
            good = svc.submit(
                Query(queries[1]), SearchOptions(k=5, exact=True)
            )
            svc.start()
            with pytest.raises(ValueError, match="unknown attribute field"):
                bad.result(timeout=30)
            res = good.result(timeout=30)
            assert len(res.ids) == 5
            ref = built_must.query(Query(queries[1]),
                                   SearchOptions(k=5, exact=True))
            assert_same_result(res, ref)
        finally:
            svc.close()

    def test_batch_filter_compiles_once_per_wave(self, built_must, queries):
        """A shared Filter instance is compiled once per corpus slice on
        the graph batch path, not once per query."""
        calls = 0
        flt = Eq("category", "alpha")
        original = flt.mask

        def counting(table):
            nonlocal calls
            calls += 1
            return original(table)

        object.__setattr__(flt, "mask", counting)
        try:
            built_must.query(
                [Query(q, filter=flt) for q in queries],
                SearchOptions(k=5, l=32, n_jobs=2),
            )
        finally:
            object.__delattr__(flt, "mask")
        assert calls == 1

    def test_snapshot_query_forwards_every_option(self, built_must, queries):
        snap = built_must.snapshot()
        opts = SearchOptions(k=5, l=64, engine="paper", rng=11,
                             check_monotone=True)
        ref = built_must.query(Query(queries[0]), opts)
        res = snap.query(Query(queries[0]), opts)
        assert np.array_equal(res.ids, ref.ids)
        assert np.array_equal(res.similarities, ref.similarities)

    def test_legacy_calls_warn(self, built_must, queries):
        with pytest.warns(DeprecationWarning, match="MUST.search"):
            built_must.search(queries[0], k=5)
        with pytest.warns(DeprecationWarning, match="MUST.batch_search"):
            built_must.batch_search(queries[:2], k=5)
        with MustService(built_must, ServiceConfig(max_batch=2)) as svc:
            with pytest.warns(DeprecationWarning, match="MustService.submit"):
                svc.search(queries[0], k=5)

    def test_typed_calls_do_not_warn(self, built_must, queries):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            built_must.query(Query(queries[0]), SearchOptions(k=5))
            with MustService(built_must, ServiceConfig(max_batch=2)) as svc:
                svc.search(Query(queries[0]), SearchOptions(k=5, exact=True))

    @pytest.mark.parametrize("exact", [False, True])
    @pytest.mark.parametrize("refine", [None, 2])
    def test_single_query_bit_parity(self, built_must, queries, exact, refine):
        for q in queries[:4]:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                legacy = built_must.search(
                    q, k=5, l=64, exact=exact, refine=refine
                )
            typed = built_must.query(
                Query(q), SearchOptions(k=5, l=64, exact=exact, refine=refine)
            )
            assert_same_result(legacy, typed)

    @pytest.mark.parametrize("exact", [False, True])
    def test_batch_bit_parity(self, built_must, queries, exact):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = built_must.batch_search(
                queries, k=5, l=64, exact=exact, n_jobs=2
            )
        typed = built_must.query(
            [Query(q) for q in queries],
            SearchOptions(k=5, l=64, exact=exact, n_jobs=2),
        )
        for a, b in zip(legacy, typed):
            assert_same_result(a, b)

    def test_segmented_bit_parity(self, queries):
        must = MUST(
            _attributed_set(150, seed=7),
            weights=WEIGHTS,
            segment_policy=SegmentPolicy(seal_size=48, max_segments=8),
        ).build()
        must.insert(_attributed_set(70, seed=8))
        must.mark_deleted(np.arange(0, 40, 5))
        for exact in (False, True):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                legacy = must.search(queries[0], k=5, l=64, exact=exact)
            typed = must.query(
                Query(queries[0]), SearchOptions(k=5, l=64, exact=exact)
            )
            assert_same_result(legacy, typed)

    def test_service_legacy_vs_typed_parity(self, built_must, queries):
        with MustService(built_must, ServiceConfig(max_batch=4)) as svc:
            for exact in (False, True):
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", DeprecationWarning)
                    legacy = svc.search(queries[0], k=5, l=64, exact=exact)
                typed = svc.search(
                    Query(queries[0]), SearchOptions(k=5, l=64, exact=exact)
                )
                assert_same_result(legacy, typed)

    def test_options_and_legacy_kwargs_exclusive(self, built_must, queries):
        with MustService(built_must, ServiceConfig(max_batch=2)) as svc:
            with pytest.raises(ValueError, match="not both"):
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", DeprecationWarning)
                    svc.submit(queries[0], SearchOptions(k=5), k=5)


# ----------------------------------------------------------------------
# The unified l clamp (satellite: segmented path used to skip it)
# ----------------------------------------------------------------------
class TestLClamp:
    def test_single_graph_huge_l_equals_full_l(self, built_must, queries):
        huge = built_must.query(
            Query(queries[0]), SearchOptions(k=5, l=10**7)
        )
        full = built_must.query(
            Query(queries[0]), SearchOptions(k=5, l=built_must.objects.n)
        )
        assert_same_result(huge, full)

    def test_segmented_huge_l_equals_full_l(self, queries):
        must = MUST(
            random_multivector_set(120, DIMS, seed=9),
            weights=WEIGHTS,
            segment_policy=SegmentPolicy(seal_size=48, max_segments=8),
        ).build()
        must.insert(random_multivector_set(60, DIMS, seed=10))
        huge = must.query(Query(queries[0]), SearchOptions(k=5, l=10**7))
        full = must.query(
            Query(queries[0]),
            SearchOptions(k=5, l=must.segments.num_total),
        )
        assert_same_result(huge, full)
        # The legacy shim goes through the same clamp.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = must.search(queries[0], k=5, l=10**7)
        assert_same_result(legacy, huge)

    def test_tiny_corpus_returns_everything(self, queries):
        must = MUST(
            random_multivector_set(6, DIMS, seed=11), weights=WEIGHTS
        ).build()
        res = must.query(Query(queries[0]), SearchOptions(k=10, l=100))
        assert len(res.ids) == 6
