"""Randomized-trace parity suite for the segmented dynamic-update subsystem.

Replays random interleaved insert/delete/search/compact traces (seeded via
``SeedSequence`` children) against a brute-force oracle that stores every
object ever inserted in external-id order with an alive mask.  At **every
step of every trace**:

* exact-mode segmented search must be **bit-identical** to the oracle
  (ids and similarities — both sides score through the
  layout-independent kernel), and
* segmented graph search must reach recall@10 ≥ 0.9 against the oracle.

Plus unit coverage of the policy triggers (seal threshold, segment-count
compaction, tombstone-ratio compaction), id-map stability, and the
executor parity guarantees on segmented instances.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.framework import MUST
from repro.core.multivector import MultiVectorSet, normalize_rows
from repro.core.space import JointSpace
from repro.core.weights import Weights
from repro.index.flat import FlatIndex
from repro.index.pipeline import FusedIndexBuilder
from repro.index.segments import SegmentedIndex, SegmentPolicy

from tests.conftest import random_multivector_set, random_query

DIMS = (8, 6)
WEIGHTS = Weights([0.5, 0.5])


def _objects(n: int, rng: np.random.Generator) -> MultiVectorSet:
    return MultiVectorSet(
        [normalize_rows(rng.standard_normal((n, d)).astype(np.float32))
         for d in DIMS]
    )


class Oracle:
    """Ground truth: every object ever inserted, in external-id order."""

    def __init__(self, objects: MultiVectorSet):
        self.mats = [m.copy() for m in objects.matrices]
        self.alive = np.ones(objects.n, dtype=bool)

    def insert(self, objects: MultiVectorSet) -> None:
        self.mats = [
            np.concatenate([old, new])
            for old, new in zip(self.mats, objects.matrices)
        ]
        self.alive = np.concatenate(
            [self.alive, np.ones(objects.n, dtype=bool)]
        )

    def delete(self, ext_ids: np.ndarray) -> None:
        self.alive[np.asarray(ext_ids)] = False

    @property
    def num_active(self) -> int:
        return int(self.alive.sum())

    def flat(self) -> FlatIndex:
        return FlatIndex(
            JointSpace(MultiVectorSet(self.mats), WEIGHTS),
            deleted=~self.alive,
            deterministic=True,
        )


def _policy() -> SegmentPolicy:
    return SegmentPolicy(
        seal_size=12, max_segments=3,
        max_deleted_fraction=0.35, min_compact_size=24,
    )


def _fresh(n0: int = 40, seed: int = 11) -> tuple[MUST, Oracle]:
    objects = random_multivector_set(n0, DIMS, seed=seed)
    must = MUST(
        objects,
        weights=WEIGHTS,
        builder=FusedIndexBuilder(gamma=8, seed=3),
        segment_policy=_policy(),
    )
    must.build()
    oracle = Oracle(objects)
    return must, oracle


class TestRandomizedTraceParity:
    """The archetype suite: N random traces, parity asserted at every step."""

    N_TRACES = 3
    N_OPS = 22
    K = 10
    L = 80

    def _check_step(self, must: MUST, oracle: Oracle, queries) -> None:
        flat = oracle.flat()
        k = min(self.K, oracle.num_active)
        hits = total = 0
        for q in queries:
            exact_oracle = flat.search(q, k)
            exact_seg = must.search(q, k=k, exact=True)
            # Exact path: bit-identical, regardless of segment layout.
            np.testing.assert_array_equal(exact_seg.ids, exact_oracle.ids)
            np.testing.assert_array_equal(
                exact_seg.similarities, exact_oracle.similarities
            )
            approx = must.search(q, k=k, l=self.L)
            assert approx.stats.segments_probed >= 1
            hits += np.intersect1d(approx.ids, exact_oracle.ids).size
            total += len(exact_oracle)
        assert hits / total >= 0.9, "graph-path recall@10 below 0.9"

    @pytest.mark.parametrize("trace_id", range(N_TRACES))
    def test_trace(self, trace_id):
        root = np.random.SeedSequence(20240)
        rng = np.random.default_rng(root.spawn(self.N_TRACES)[trace_id])
        must, oracle = _fresh(seed=100 + trace_id)
        queries = [random_query(DIMS, seed=1000 + trace_id * 10 + j)
                   for j in range(4)]
        # Enter streaming mode (wraps the built graph as sealed segment 0).
        warmup = _objects(5, rng)
        must.insert(warmup)
        oracle.insert(warmup)
        self._check_step(must, oracle, queries)

        for _ in range(self.N_OPS):
            op = rng.choice(
                ["insert", "delete", "compact", "search"],
                p=[0.40, 0.25, 0.10, 0.25],
            )
            if op == "insert":
                batch = _objects(int(rng.integers(1, 9)), rng)
                ext = must.insert(batch)
                oracle.insert(batch)
                assert ext.size == batch.n
            elif op == "delete":
                active = must.segments.active_ext_ids()
                # Keep at least two objects alive.
                max_kill = max(min(active.size - 2, 6), 0)
                if max_kill == 0:
                    continue
                count = int(rng.integers(1, max_kill + 1))
                doomed = rng.choice(active, size=count, replace=False)
                must.mark_deleted(doomed)
                oracle.delete(doomed)
            elif op == "compact":
                _, active = must.compact()
                np.testing.assert_array_equal(
                    active, np.flatnonzero(oracle.alive)
                )
            self._check_step(must, oracle, queries)

        # The trace must actually have exercised the lifecycle.
        seg = must.segments
        assert seg.num_seals + seg.num_compactions > 0

    def test_traces_are_deterministic(self):
        must, oracle = _fresh(seed=7)
        must.insert(_objects(15, np.random.default_rng(3)))
        q = random_query(DIMS, seed=5)
        a = must.search(q, k=10, l=60, rng=0)
        b = must.search(q, k=10, l=60, rng=0)
        np.testing.assert_array_equal(a.ids, b.ids)
        np.testing.assert_array_equal(a.similarities, b.similarities)


class TestLayoutInvariance:
    """Same corpus, different segment layouts → identical exact answers."""

    def test_exact_independent_of_layout(self):
        corpus = random_multivector_set(90, DIMS, seed=42)
        q = random_query(DIMS, seed=2)

        # Layout A: everything in one sealed segment.
        one = SegmentedIndex(
            WEIGHTS, builder=FusedIndexBuilder(gamma=8, seed=3),
            policy=SegmentPolicy(seal_size=1000),
        )
        one.insert(corpus)
        one.seal_delta()

        # Layout B: three segments of very different sizes + live delta.
        many = SegmentedIndex(
            WEIGHTS, builder=FusedIndexBuilder(gamma=8, seed=3),
            policy=SegmentPolicy(seal_size=1000, max_segments=10),
        )
        for lo, hi in ((0, 50), (50, 71), (71, 84)):
            many.insert(corpus.subset(np.arange(lo, hi)))
            many.seal_delta()
        many.insert(corpus.subset(np.arange(84, 90)))  # stays in the delta

        for k in (1, 10, 25):
            a = one.exact_search(q, k)
            b = many.exact_search(q, k)
            np.testing.assert_array_equal(a.ids, b.ids)
            np.testing.assert_array_equal(a.similarities, b.similarities)

    def test_deletes_respected_in_both_layouts(self):
        corpus = random_multivector_set(40, DIMS, seed=8)
        seg = SegmentedIndex(
            WEIGHTS, builder=FusedIndexBuilder(gamma=8, seed=3),
            policy=SegmentPolicy(seal_size=20, max_segments=10),
        )
        seg.insert(corpus)
        doomed = np.array([1, 5, 21, 33])
        seg.mark_deleted(doomed)
        q = random_query(DIMS, seed=3)
        for res in (seg.exact_search(q, 15), seg.search(q, k=15, l=40)):
            assert not (set(res.ids.tolist()) & set(doomed.tolist()))


class TestPolicyTriggers:
    def _seg(self, **kwargs) -> SegmentedIndex:
        defaults = dict(seal_size=10, max_segments=2,
                        max_deleted_fraction=0.3, min_compact_size=15)
        defaults.update(kwargs)
        return SegmentedIndex(
            WEIGHTS, builder=FusedIndexBuilder(gamma=6, seed=1),
            policy=SegmentPolicy(**defaults),
        )

    def test_delta_seals_at_threshold(self):
        seg = self._seg()
        rng = np.random.default_rng(0)
        seg.insert(_objects(9, rng))
        assert seg.num_seals == 0 and seg.delta.n == 9
        seg.insert(_objects(1, rng))
        assert seg.num_seals == 1 and seg.delta.n == 0
        assert len(seg.sealed) == 1
        seg.sealed[-1].index.validate()

    def test_segment_count_triggers_merge_compaction(self):
        seg = self._seg(max_segments=2, min_compact_size=10_000)
        rng = np.random.default_rng(1)
        for _ in range(3):  # three seals → count trigger fires
            seg.insert(_objects(10, rng))
        assert seg.num_compactions == 1
        assert len(seg.sealed) == 1 and seg.sealed[0].n == 30
        seg.sealed[0].index.validate()

    def test_tombstone_ratio_triggers_compaction(self):
        seg = self._seg(seal_size=100, max_segments=10, min_compact_size=15)
        rng = np.random.default_rng(2)
        seg.insert(_objects(30, rng))
        seg.mark_deleted(np.arange(5))
        assert seg.num_compactions == 0  # 5/30 < 0.3
        seg.mark_deleted(np.arange(5, 12))
        assert seg.num_compactions == 1  # 12/30 > 0.3 → auto-rebuild
        assert seg.num_total == 18 and seg.deleted_fraction == 0.0
        np.testing.assert_array_equal(
            seg.active_ext_ids(), np.arange(12, 30)
        )

    def test_small_corpora_ignore_ratio_trigger(self):
        seg = self._seg(min_compact_size=50)
        rng = np.random.default_rng(3)
        seg.insert(_objects(8, rng))
        seg.mark_deleted(np.arange(4))  # 50% dead but below min size
        assert seg.num_compactions == 0

    def test_seal_reseats_deleted_seed(self):
        seg = self._seg(seal_size=10_000, max_segments=10,
                        min_compact_size=10_000)
        rng = np.random.default_rng(4)
        seg.insert(_objects(20, rng))
        # Kill most of the delta so the centroid seed is likely dead,
        # then seal: the sealed segment must still validate (live seed).
        seg.mark_deleted(np.arange(15))
        sealed = seg.seal_delta()
        sealed.index.validate()
        assert not sealed.index.deleted[sealed.index.seed_vertex]

    def test_fully_dead_delta_is_discarded_on_seal(self):
        seg = self._seg(seal_size=10_000, min_compact_size=10_000)
        rng = np.random.default_rng(5)
        seg.insert(_objects(6, rng))
        seg.seal_delta()
        seg.insert(_objects(4, rng))
        seg.mark_deleted(np.arange(6, 10))  # the whole delta
        assert seg.seal_delta() is None
        assert len(seg.sealed) == 1 and seg.delta.n == 0


class TestIdMapAndGuards:
    def test_external_ids_stable_across_compaction(self):
        must, _ = _fresh(n0=30, seed=1)
        ext = must.insert(_objects(10, np.random.default_rng(0)))
        np.testing.assert_array_equal(ext, np.arange(30, 40))
        must.mark_deleted(np.array([0, 35]))
        _, active = must.compact()
        assert 0 not in active and 35 not in active
        # Ids never reused: the next insert continues after 39.
        ext2 = must.insert(_objects(3, np.random.default_rng(1)))
        np.testing.assert_array_equal(ext2, np.arange(40, 43))

    def test_unknown_delete_rejected(self):
        must, _ = _fresh(n0=20, seed=2)
        must.insert(_objects(5, np.random.default_rng(0)))
        with pytest.raises(ValueError):
            must.mark_deleted(np.array([999]))

    def test_cannot_delete_every_object(self):
        seg = SegmentedIndex(WEIGHTS, builder=FusedIndexBuilder(gamma=6))
        seg.insert(_objects(5, np.random.default_rng(0)))
        with pytest.raises(ValueError):
            seg.mark_deleted(np.arange(5))

    def test_rejected_delete_leaves_state_unchanged(self):
        """A failed mark_deleted must be atomic: no partial tombstones."""
        seg = SegmentedIndex(
            WEIGHTS, builder=FusedIndexBuilder(gamma=6),
            policy=SegmentPolicy(seal_size=10),
        )
        seg.insert(_objects(25, np.random.default_rng(0)))  # sealed + delta
        with pytest.raises(ValueError):
            seg.mark_deleted(np.array([3, 12, 999]))  # 999 unknown
        assert seg.num_active == 25
        with pytest.raises(ValueError):
            seg.mark_deleted(np.arange(25))  # would kill everything
        assert seg.num_active == 25
        np.testing.assert_array_equal(seg.active_ext_ids(), np.arange(25))

    def test_build_refused_after_streaming(self):
        """build() would silently drop streamed objects and recycle their
        external ids — it must refuse and point at compact()."""
        must, _ = _fresh(n0=20, seed=9)
        must.insert(_objects(4, np.random.default_rng(0)))
        with pytest.raises(ValueError, match="compact"):
            must.build()
        # The streamed objects are still there.
        assert must.segments.num_active == 24

    def test_fit_weights_refused_after_streaming(self):
        must, _ = _fresh(n0=20, seed=10)
        must.insert(_objects(4, np.random.default_rng(0)))
        q = random_query(DIMS, seed=0)
        with pytest.raises(ValueError, match="streaming"):
            must.fit_weights([q], np.array([1]))
        assert must.weight_result is None  # guard fired before training

    def test_dim_mismatch_rejected(self):
        must, _ = _fresh(n0=20, seed=3)
        bad = MultiVectorSet([
            normalize_rows(np.random.default_rng(0)
                           .standard_normal((2, 5)).astype(np.float32)),
            normalize_rows(np.random.default_rng(1)
                           .standard_normal((2, 6)).astype(np.float32)),
        ])
        with pytest.raises(ValueError):
            must.insert(bad)

    def test_empty_segmented_search(self):
        seg = SegmentedIndex(WEIGHTS)
        res = seg.search(random_query(DIMS, seed=0), k=5, l=10)
        assert len(res) == 0
        assert len(seg.exact_search(random_query(DIMS, seed=0), 5)) == 0

    def test_weights_frozen_after_streaming(self):
        must, _ = _fresh(n0=20, seed=4)
        must.insert(_objects(4, np.random.default_rng(0)))
        with pytest.raises(ValueError):
            must.set_weights(Weights([0.9, 0.1]))


class TestExecutorParityOnSegments:
    def _streamed(self) -> MUST:
        must, _ = _fresh(n0=50, seed=6)
        must.insert(_objects(25, np.random.default_rng(0)))
        must.mark_deleted(np.arange(0, 20, 4))
        return must

    def test_graph_batch_bit_identical_across_n_jobs(self):
        must = self._streamed()
        queries = [random_query(DIMS, seed=s) for s in range(8)]
        base = must.batch_search(queries, k=10, l=60, n_jobs=1, rng=7)
        for n_jobs in (2, 4):
            run = must.batch_search(queries, k=10, l=60, n_jobs=n_jobs, rng=7)
            for a, b in zip(base, run):
                np.testing.assert_array_equal(a.ids, b.ids)
                np.testing.assert_array_equal(a.similarities, b.similarities)
        assert base.stats.segments_probed > 0

    def test_exact_batch_matches_single_query_ranks(self):
        must = self._streamed()
        queries = [random_query(DIMS, seed=s) for s in range(6)]
        batch = must.batch_search(queries, k=8, exact=True)
        for q, res in zip(queries, batch):
            single = must.search(q, k=8, exact=True)
            np.testing.assert_array_equal(res.ids, single.ids)
            np.testing.assert_allclose(
                res.similarities, single.similarities, atol=1e-6
            )

    def test_stats_aggregate_counts_probes(self):
        must = self._streamed()
        queries = [random_query(DIMS, seed=s) for s in range(4)]
        run = must.batch_search(queries, k=5, l=40)
        per_query = sum(r.stats.segments_probed for r in run)
        assert run.stats.segments_probed == per_query
        assert per_query >= len(queries)  # ≥ 1 probe per query
