"""Serving-layer tests: coalescing parity, snapshot isolation, admission
control, lifecycle, stats, and a concurrent read/write stress test.

The parity bar is **bitwise**: a response served through the coalescing
dispatcher must equal ``MUST.search`` with the same arguments against
the request's snapshot — ids *and* similarities.  On segmented
instances that holds on both the graph and exact paths (the exact wave
reranks through the same layout-independent float64 kernel the
single-query scan uses); single-graph exact waves keep the legacy GEMM
batch, pinned here to rank parity.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.framework import MUST
from repro.core.query import SearchOptions
from repro.core.weights import Weights
from repro.index.executor import BatchExecutor
from repro.index.segments import SegmentPolicy
from repro.service import (
    IndexSnapshot,
    MustService,
    ServiceClosed,
    ServiceConfig,
    ServiceOverloaded,
)

from tests.conftest import random_multivector_set, random_query

DIMS = (16, 8)
WEIGHTS = Weights([0.4, 0.6])


def _fresh_must(n: int = 300, seed: int = 1) -> MUST:
    return MUST(
        random_multivector_set(n, DIMS, seed=seed),
        weights=WEIGHTS,
        segment_policy=SegmentPolicy(
            seal_size=64, max_segments=8, max_deleted_fraction=0.9
        ),
    ).build()


@pytest.fixture(scope="module")
def segmented_must() -> MUST:
    """Built + streamed + partially deleted: sealed segments and a delta."""
    must = _fresh_must()
    must.insert(random_multivector_set(150, DIMS, seed=2))
    must.mark_deleted(np.arange(0, 60, 7))
    return must


@pytest.fixture(scope="module")
def queries():
    return [random_query(DIMS, seed=s) for s in range(24)]


def assert_same_result(res, ref):
    assert np.array_equal(res.ids, ref.ids)
    assert np.array_equal(res.similarities, ref.similarities)


class TestSnapshot:
    def test_unbuilt_must_cannot_snapshot(self):
        must = MUST(random_multivector_set(20, DIMS, seed=0), weights=WEIGHTS)
        with pytest.raises(ValueError, match="unbuilt"):
            must.snapshot()

    def test_segmented_snapshot_matches_live(self, segmented_must, queries):
        snap = segmented_must.snapshot()
        for q in queries[:6]:
            assert_same_result(
                snap.search(q, k=10, l=60), segmented_must.search(q, k=10, l=60)
            )
            assert_same_result(
                snap.search(q, k=10, exact=True),
                segmented_must.search(q, k=10, exact=True),
            )

    def test_single_graph_snapshot_matches_live(self, queries):
        must = _fresh_must(n=150, seed=3)
        must.mark_deleted(np.array([5, 9]))
        snap = must.snapshot()
        assert not snap.is_segmented
        for q in queries[:6]:
            assert_same_result(snap.search(q, k=5, l=40),
                               must.search(q, k=5, l=40))
            assert_same_result(snap.search(q, k=5, exact=True),
                               must.search(q, k=5, exact=True))

    def test_snapshot_isolated_from_all_mutations(self, queries):
        must = _fresh_must(n=200, seed=4)
        must.insert(random_multivector_set(40, DIMS, seed=5))
        q = queries[0]
        before_graph = must.search(q, k=10, l=60)
        before_exact = must.search(q, k=10, exact=True)
        snap = must.snapshot()
        # Mutate through every write path, including a full compaction.
        must.insert(random_multivector_set(50, DIMS, seed=6))
        must.mark_deleted(before_exact.ids[:3])
        must.compact()
        assert_same_result(snap.search(q, k=10, l=60), before_graph)
        assert_same_result(snap.search(q, k=10, exact=True), before_exact)
        # The live index moved on: the deleted ids are gone from it.
        live = must.search(q, k=10, exact=True)
        assert not np.isin(before_exact.ids[:3], live.ids).any()

    def test_snapshot_num_active_frozen(self):
        must = _fresh_must(n=120, seed=7)
        must.insert(random_multivector_set(30, DIMS, seed=8))
        snap = must.snapshot()
        active = snap.num_active
        must.mark_deleted(np.arange(10))
        assert snap.num_active == active
        assert must.segments.num_active == active - 10


class TestExactWave:
    """The coalesced exact path against its single-query reference."""

    @pytest.mark.parametrize("refine", [None, 3])
    def test_wave_bitwise_identical(self, segmented_must, queries, refine):
        snap = segmented_must.snapshot()
        wave = snap.exact_wave(queries, k=10, refine=refine)
        for q, res in zip(queries, wave):
            assert_same_result(
                res, segmented_must.search(q, k=10, exact=True, refine=refine)
            )

    def test_wave_with_weight_override(self, segmented_must, queries):
        override = Weights([0.8, 0.2])
        snap = segmented_must.snapshot()
        wave = snap.exact_wave(queries, k=5, weights=override)
        for q, res in zip(queries, wave):
            assert_same_result(
                res,
                segmented_must.search(q, k=5, exact=True, weights=override),
            )

    def test_wave_k_exceeds_active(self):
        must = _fresh_must(n=40, seed=9)
        must.insert(random_multivector_set(10, DIMS, seed=10))
        must.mark_deleted(np.arange(30))
        snap = must.snapshot()
        qs = [random_query(DIMS, seed=s) for s in range(4)]
        wave = snap.exact_wave(qs, k=50)
        for q, res in zip(qs, wave):
            assert_same_result(res, must.search(q, k=50, exact=True))
            assert len(res) == must.segments.num_active

    def test_executor_entry_point(self, segmented_must, queries):
        snap = segmented_must.segments.snapshot()
        batch = BatchExecutor().run_exact_wave(snap, queries, k=10)
        assert len(batch) == len(queries)
        for q, res in zip(queries, batch):
            assert_same_result(res, segmented_must.search(q, k=10, exact=True))
        assert batch.stats.joint_evals > 0

    def test_single_graph_wave_rank_parity(self, queries):
        must = _fresh_must(n=150, seed=11)
        snap = must.snapshot()
        wave = snap.exact_wave(queries[:8], k=10)
        for q, res in zip(queries, wave):
            ref = must.search(q, k=10, exact=True)
            assert np.array_equal(res.ids, ref.ids)
            np.testing.assert_allclose(res.similarities, ref.similarities,
                                       atol=1e-6)

    def test_zero_margin_still_ranks(self, segmented_must, queries):
        # margin=0 degrades gracefully: same ids (the float32 prefilter
        # is still a correct ranking on this corpus), exact similarities.
        snap = segmented_must.snapshot()
        wave = snap.exact_wave(queries[:4], k=10, margin=0.0)
        for q, res in zip(queries, wave):
            ref = segmented_must.search(q, k=10, exact=True)
            assert set(res.ids) <= set(ref.ids) | set(res.ids)
            assert len(res) == 10


class TestServiceParity:
    def test_concurrent_mixed_clients_bitwise(self, segmented_must, queries):
        refs = {}
        for i, q in enumerate(queries):
            if i % 2 == 0:
                refs[i] = segmented_must.search(q, k=10, exact=True)
            else:
                refs[i] = segmented_must.search(q, k=10, l=60)
        with MustService(
            segmented_must, ServiceConfig(max_batch=16, max_wait_ms=5.0)
        ) as svc:
            results: list = [None] * len(queries)

            def client(i):
                if i % 2 == 0:
                    results[i] = svc.search(queries[i], k=10, exact=True)
                else:
                    results[i] = svc.search(queries[i], k=10, l=60)

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(len(queries))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            for i, res in enumerate(results):
                assert_same_result(res, refs[i])
            # The dispatcher actually coalesced (not 24 batches of one).
            assert svc.stats.batches < len(queries)
            assert svc.stats.coalesced_requests > 0

    def test_per_request_rng_independent_of_batch(self, segmented_must,
                                                  queries):
        """A request's answer cannot depend on its wave-mates."""
        with MustService(
            segmented_must, ServiceConfig(max_batch=8, max_wait_ms=5.0)
        ) as svc:
            solo = svc.search(queries[0], k=10, l=60, rng=123)
            futures = [
                svc.submit(q, k=10, l=60, rng=123 if i == 0 else i)
                for i, q in enumerate(queries[:8])
            ]
            batched = futures[0].result()
        assert_same_result(solo, batched)

    def test_mixed_plans_group_correctly(self, segmented_must, queries):
        override = Weights([0.9, 0.1])
        with MustService(
            segmented_must, ServiceConfig(max_batch=16, max_wait_ms=5.0)
        ) as svc:
            futs = []
            for i, q in enumerate(queries[:12]):
                if i % 3 == 0:
                    futs.append((svc.submit(q, k=5, exact=True),
                                 dict(k=5, exact=True)))
                elif i % 3 == 1:
                    futs.append((
                        svc.submit(q, k=7, exact=True, weights=override),
                        dict(k=7, exact=True, weights=override),
                    ))
                else:
                    futs.append((svc.submit(q, k=5, exact=True, refine=2),
                                 dict(k=5, exact=True, refine=2)))
            for (fut, params), q in zip(futs, queries[:12]):
                assert_same_result(
                    fut.result(), segmented_must.search(q, **params)
                )


class TestSearchDuringCompaction:
    def test_search_equals_before_or_after(self, queries):
        """ISSUE parity clause: a search overlapping a compaction equals
        a search strictly before or strictly after it."""
        must = _fresh_must(n=250, seed=12)
        must.insert(random_multivector_set(80, DIMS, seed=13))
        must.mark_deleted(np.arange(0, 40, 3))
        with MustService(
            must, ServiceConfig(max_batch=8, max_wait_ms=1.0)
        ) as svc:
            before = {
                i: must.search(q, k=10, exact=True)
                for i, q in enumerate(queries)
            }
            answers: dict[int, list] = {i: [] for i in range(len(queries))}
            stop = threading.Event()

            def reader(i):
                while not stop.is_set():
                    answers[i].append(
                        svc.search(queries[i], k=10, exact=True)
                    )

            readers = [
                threading.Thread(target=reader, args=(i,)) for i in range(4)
            ]
            for t in readers:
                t.start()
            svc.compact()
            stop.set()
            for t in readers:
                t.join()
            after = {
                i: must.search(q, k=10, exact=True)
                for i, q in enumerate(queries)
            }
            checked = 0
            for i, got in answers.items():
                for res in got:
                    matches_before = np.array_equal(
                        res.ids, before[i].ids
                    ) and np.array_equal(
                        res.similarities, before[i].similarities
                    )
                    matches_after = np.array_equal(
                        res.ids, after[i].ids
                    ) and np.array_equal(
                        res.similarities, after[i].similarities
                    )
                    assert matches_before or matches_after
                    checked += 1
            assert checked > 0


class TestAdmissionControl:
    def test_reject_backpressure(self, segmented_must, queries):
        svc = MustService(
            segmented_must,
            ServiceConfig(max_queue=4, backpressure="reject"),
            start=False,
        )
        futs = [svc.submit(queries[i], k=5) for i in range(4)]
        with pytest.raises(ServiceOverloaded):
            svc.submit(queries[4], k=5)
        assert svc.stats.rejected == 1
        # Once the dispatcher starts, the accepted requests all complete.
        svc.start()
        for fut, q in zip(futs, queries):
            assert_same_result(fut.result(timeout=30),
                               segmented_must.search(q, k=5))
        svc.close()

    def test_block_backpressure_times_out(self, segmented_must, queries):
        svc = MustService(
            segmented_must,
            ServiceConfig(
                max_queue=2, backpressure="block", submit_timeout_s=0.05
            ),
            start=False,
        )
        for i in range(2):
            svc.submit(queries[i], k=5)
        t0 = time.perf_counter()
        with pytest.raises(ServiceOverloaded):
            svc.submit(queries[2], k=5)
        assert time.perf_counter() - t0 >= 0.05
        svc.start()
        svc.close()

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            ServiceConfig(max_batch=0)
        with pytest.raises(ValueError):
            ServiceConfig(backpressure="drop")
        with pytest.raises(ValueError):
            ServiceConfig(exact_margin=-1.0)


class TestLifecycle:
    def test_close_drains_then_rejects(self, segmented_must, queries):
        svc = MustService(
            segmented_must, ServiceConfig(max_batch=4, max_wait_ms=1.0)
        )
        futs = [svc.submit(q, k=5) for q in queries[:8]]
        svc.close()
        for fut in futs:
            assert len(fut.result(timeout=1)) == 5
        with pytest.raises(ServiceClosed):
            svc.submit(queries[0], k=5)
        svc.close()  # idempotent

    def test_close_without_start_fails_pending(self, segmented_must, queries):
        svc = MustService(segmented_must, start=False)
        fut = svc.submit(queries[0], k=5)
        svc.close()
        with pytest.raises(ServiceClosed):
            fut.result(timeout=1)

    def test_unbuilt_must_rejected(self):
        must = MUST(random_multivector_set(20, DIMS, seed=0), weights=WEIGHTS)
        with pytest.raises(ValueError, match="built"):
            MustService(must)

    def test_serve_kwargs_and_config_exclusive(self, segmented_must):
        with pytest.raises(ValueError):
            segmented_must.serve(ServiceConfig(), max_batch=4)
        svc = segmented_must.serve(max_batch=4, max_wait_ms=0.5)
        assert svc.config.max_batch == 4
        svc.close()

    def test_failed_request_propagates_not_poisons(self, segmented_must,
                                                   queries):
        with MustService(
            segmented_must, ServiceConfig(max_batch=4, max_wait_ms=5.0)
        ) as svc:
            # refine=0 is invalid on both paths; each failure stays
            # contained (its own graph task / its own exact group).
            bad_graph = svc.submit(queries[0], k=5, refine=0)
            bad_exact = svc.submit(queries[1], k=5, exact=True, refine=0)
            good = svc.submit(queries[2], k=5, exact=True)
            with pytest.raises(ValueError):
                bad_graph.result(timeout=30)
            with pytest.raises(ValueError):
                bad_exact.result(timeout=30)
            assert len(good.result(timeout=30)) == 5
            assert svc.stats.failed == 2
            assert svc.stats.completed >= 1


class TestDispatcherResilience:
    def test_legacy_list_weights_answers_in_mixed_wave(self, segmented_must,
                                                       queries):
        """A raw squared-weight list from a legacy caller used to reach
        the plan groupers without a ``.squared`` attribute and fail every
        wave-mate's future; ``submit`` now normalises it to
        :class:`Weights`, so the request groups correctly and answers
        bit-identically alongside typed wave-mates."""
        svc = MustService(
            segmented_must, ServiceConfig(max_batch=4, max_wait_ms=5.0),
            start=False,
        )
        try:
            legacy = svc.submit(queries[0], k=5, exact=True,
                                weights=[0.5, 0.5])
            mate = svc.submit(queries[1], SearchOptions(k=5, exact=True))
            svc.start()
            assert_same_result(
                legacy.result(timeout=30),
                segmented_must.search(queries[0], k=5, exact=True,
                                      weights=Weights([0.5, 0.5])),
            )
            assert_same_result(
                mate.result(timeout=30),
                segmented_must.search(queries[1], k=5, exact=True),
            )
        finally:
            svc.close()

    def test_wave_level_error_fails_batch_not_dispatcher(self, segmented_must,
                                                         queries):
        """An error outside the per-request paths (here: plan grouping on
        a weights value that cannot be normalised) must fail the batch's
        futures, not kill the dispatcher and strand every later caller."""
        with MustService(
            segmented_must, ServiceConfig(max_batch=4, max_wait_ms=1.0)
        ) as svc:
            bad = svc.submit(queries[0], k=5, exact=True,
                             weights="bogus")  # Weights() rejects it
            with pytest.raises(AttributeError):
                bad.result(timeout=30)
            # The dispatcher survived: the service still answers.
            assert_same_result(
                svc.search(queries[1], k=5, exact=True),
                segmented_must.search(queries[1], k=5, exact=True),
            )

    def test_cancelled_future_does_not_kill_dispatcher(self, segmented_must,
                                                       queries):
        """``cancel()`` moves a queued future to CANCELLED;
        ``set_result`` on it raises ``InvalidStateError``, which used to
        escape the wave-level handler and wedge the dispatch loop.  The
        dispatcher must claim each future before delivering and keep
        serving the cancelled request's wave-mates."""
        svc = MustService(
            segmented_must, ServiceConfig(max_batch=4, max_wait_ms=5.0),
            start=False,
        )
        try:
            doomed = svc.submit(queries[0], SearchOptions(k=5, exact=True))
            mate = svc.submit(queries[1], SearchOptions(k=5, exact=True))
            assert doomed.cancel()
            svc.start()
            assert_same_result(
                mate.result(timeout=30),
                segmented_must.search(queries[1], k=5, exact=True),
            )
            assert doomed.cancelled()
            # The cancelled request is counted as failed, and the
            # dispatcher is still draining new requests.
            assert svc.stats.failed >= 1
            assert len(svc.search(queries[2], k=5)) == 5
        finally:
            svc.close()


class TestServiceStats:
    def test_counters_and_percentiles(self, segmented_must, queries):
        with MustService(
            segmented_must, ServiceConfig(max_batch=8, max_wait_ms=2.0)
        ) as svc:
            threads = [
                threading.Thread(
                    target=lambda q=q: svc.search(q, k=5, exact=True)
                )
                for q in queries[:16]
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            summary = svc.stats.summary()
        assert summary["submitted"] == 16
        assert summary["completed"] == 16
        assert summary["failed"] == 0
        assert sum(
            size * count for size, count in summary["batch_sizes"].items()
        ) == 16
        latency = summary["latency_ms"]
        assert latency["count"] == 16
        assert latency["p50"] <= latency["p95"] <= latency["p99"]
        assert summary["wait_ms"]["count"] == 16
        assert svc.stats.pending == 0


class TestStress:
    """Satellite: N reader threads against concurrent inserts/deletes."""

    def test_concurrent_search_insert_delete(self):
        must = _fresh_must(n=260, seed=20)
        must.insert(random_multivector_set(40, DIMS, seed=21))
        queries = [random_query(DIMS, seed=100 + s) for s in range(16)]
        num_readers, per_reader = 6, 12
        k = 8
        errors: list[Exception] = []
        responses: list[list] = [[] for _ in range(num_readers)]

        with MustService(
            must, ServiceConfig(max_batch=16, max_wait_ms=2.0)
        ) as svc:
            def reader(slot: int):
                try:
                    for r in range(per_reader):
                        exact = (slot + r) % 2 == 0
                        res = svc.search(
                            queries[(slot * 5 + r) % len(queries)],
                            k=k, l=50, exact=exact,
                        )
                        responses[slot].append(res)
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            def writer():
                try:
                    rng = np.random.default_rng(7)
                    for step in range(10):
                        svc.insert(
                            random_multivector_set(8, DIMS, seed=300 + step)
                        )
                        if step % 3 == 2:
                            active = svc.active_ids()
                            doomed = rng.choice(
                                active, size=4, replace=False
                            )
                            svc.mark_deleted(doomed)
                        time.sleep(0.002)
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [
                threading.Thread(target=reader, args=(slot,))
                for slot in range(num_readers)
            ] + [threading.Thread(target=writer)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            assert not errors, errors
            # No duplicate or missing responses: every read came back.
            assert [len(r) for r in responses] == [per_reader] * num_readers
            assert svc.stats.pending == 0
            max_ext = int(svc.must.segments._next_ext)
            for got in responses:
                for res in got:
                    assert len(res) == k
                    # Stable external ids, unique, in allocation range.
                    assert len(set(res.ids.tolist())) == k
                    assert res.ids.min() >= 0
                    assert res.ids.max() < max_ext
                    # Best-first ordering.
                    assert (np.diff(res.similarities) <= 1e-12).all()

            # Quiesced parity: with writers stopped, served answers equal
            # the oracle (direct MUST.search) bit for bit.
            for q in queries[:8]:
                assert_same_result(
                    svc.search(q, k=k, exact=True),
                    svc.must.search(q, k=k, exact=True),
                )
                assert_same_result(
                    svc.search(q, k=k, l=50), svc.must.search(q, k=k, l=50)
                )
