"""Process-sharded serving tests: parity, routing, crash containment.

The sharding contract is **bitwise**: an exact answer served through a
:class:`~repro.service.ShardedService` must equal the single-process
segmented answer — ids *and* similarities — for every shard count,
because each worker reranks through the same layout-independent float64
kernel and the front-end merges with the same ``(-similarity, id)``
total order.  Shard layout may change the wall clock, never a result.

Also covered here: the :class:`~repro.utils.shm.SharedArrays` pack that
moves the vector planes across the process boundary exactly once, the
``SegmentedIndex`` sharding hooks (explicit external ids, shard-local
``allow_empty`` deletes, empty compaction), and worker-crash
containment (a dead shard fails its in-flight requests individually and
the service keeps serving from the survivors).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.framework import MUST
from repro.core.multivector import MultiVectorSet
from repro.core.query import Eq, Query, SearchOptions
from repro.core.space import JointSpace
from repro.core.weights import Weights
from repro.index.pipeline import FusedIndexBuilder
from repro.index.segments import SegmentedIndex, SegmentPolicy
from repro.service import ServiceConfig, ShardedService, ShardFailed
from repro.utils.shm import SharedArrays

from tests.conftest import random_multivector_set, random_query

DIMS = (16, 8)
WEIGHTS = Weights([0.4, 0.6])
CATEGORIES = np.array(["alpha", "beta", "gamma"])

#: cheap graph build for spawn speed — the exact path never touches the
#: graph, and every worker spawn rebuilds its shard's graph.
CHEAP_BUILDER = FusedIndexBuilder(gamma=8, epsilon=1, max_candidates=16)


class _DyingBuilder(FusedIndexBuilder):
    """Hard-exits during the worker-side graph build — a worker crash
    before the ready-ack, as seen from the spawning parent."""

    def build(self, space):
        os._exit(13)


def _attributed_set(n: int, seed: int) -> MultiVectorSet:
    objects = random_multivector_set(n, DIMS, seed=seed)
    rng = np.random.default_rng(seed + 500)
    return objects.set_attributes(
        {
            "category": CATEGORIES[rng.integers(0, 3, n)],
            "price": rng.uniform(0.0, 100.0, n),
        }
    )


def _segmented_must(n: int = 300, tail: int = 90, seed: int = 1) -> MUST:
    """Built + streamed + partially deleted: the layout the tier shards."""
    must = MUST(
        _attributed_set(n, seed),
        weights=WEIGHTS,
        builder=CHEAP_BUILDER,
        segment_policy=SegmentPolicy(
            seal_size=64, max_segments=8, max_deleted_fraction=0.9
        ),
    ).build()
    must.insert(_attributed_set(tail, seed + 7))
    must.mark_deleted(np.arange(0, 50, 7))
    return must


@pytest.fixture(scope="module")
def sharded_must() -> MUST:
    return _segmented_must()


@pytest.fixture(scope="module")
def queries():
    return [random_query(DIMS, seed=s) for s in range(12)]


def assert_same_result(res, ref):
    assert np.array_equal(res.ids, ref.ids)
    assert np.array_equal(res.similarities, ref.similarities)


class TestExactParity:
    @pytest.mark.parametrize("n_jobs", [1, 4])
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_bitwise_parity_across_layouts(
        self, sharded_must, queries, shards, n_jobs
    ):
        """Exact answers are bit-identical for every shard × n_jobs
        layout, including per-query filters and k overrides."""
        service = sharded_must.serve_sharded(
            n_shards=shards, n_jobs=n_jobs, max_batch=8, max_wait_ms=1.0
        )
        try:
            plan = SearchOptions(k=10, exact=True)
            for i, q in enumerate(queries):
                if i % 3 == 0:
                    query = Query(q, filter=Eq("category", "alpha"))
                elif i % 3 == 1:
                    query = Query(q, k=4)  # per-query k override
                else:
                    query = q
                assert_same_result(
                    service.search(query, plan),
                    sharded_must.query(query, plan),
                )
        finally:
            service.close()

    def test_coalesced_wave_parity(self, sharded_must, queries):
        """A whole wave of concurrent exact submits answers bitwise."""
        service = sharded_must.serve_sharded(
            n_shards=2, max_batch=len(queries), max_wait_ms=5.0
        )
        plan = SearchOptions(k=8, exact=True)
        try:
            futures = [service.submit(q, plan) for q in queries]
            for q, future in zip(queries, futures):
                assert_same_result(
                    future.result(timeout=30), sharded_must.query(q, plan)
                )
        finally:
            service.close()

    def test_graph_paths_serve_every_shard(self, sharded_must, queries):
        """Graph answers come from per-shard graphs (not bit-comparable
        to the unsharded graph), but must return k live global ids."""
        active = set(sharded_must.segments.active_ext_ids().tolist())
        for plan in (SearchOptions(k=8, l=40), SearchOptions(k=8, l=40, engine="wave")):
            service = sharded_must.serve_sharded(
                n_shards=2, max_batch=4, max_wait_ms=1.0
            )
            try:
                res = service.search(queries[0], plan)
                assert len(res.ids) == 8
                assert set(res.ids.tolist()) <= active
                # ids from both shards are reachable across queries
                seen = set()
                for q in queries:
                    seen |= {i % 2 for i in service.search(q, plan).ids}
                assert seen == {0, 1}
            finally:
                service.close()


class TestWriterChurn:
    def test_writes_route_by_id_and_stay_bitwise(self, queries):
        """Identical mutations applied to the sharded tier and to an
        unsharded oracle keep exact answers bit-identical throughout —
        insert, delete, and a shard-local compaction."""
        must = _segmented_must(seed=11)
        service = must.serve_sharded(n_shards=2, max_batch=4, max_wait_ms=1.0)
        plan = SearchOptions(k=10, exact=True)
        try:
            batch = _attributed_set(30, seed=77)
            got = service.insert(batch)
            want = must.insert(batch)
            assert np.array_equal(got, want)
            assert np.array_equal(
                service.active_ids(), must.segments.active_ext_ids()
            )
            for q in queries[:6]:
                assert_same_result(service.search(q, plan), must.query(q, plan))

            doomed = want[::3]
            service.mark_deleted(doomed)
            must.mark_deleted(doomed)
            for q in queries[:6]:
                assert_same_result(service.search(q, plan), must.query(q, plan))
                res = service.search(q, plan)
                assert not np.isin(doomed, res.ids).any()

            # Compaction changes every shard's physical layout; the
            # exact kernel is layout-independent, so answers must not.
            service.compact()
            for q in queries[:6]:
                assert_same_result(service.search(q, plan), must.query(q, plan))
        finally:
            service.close()

    def test_global_delete_guards(self, sharded_must):
        service = sharded_must.serve_sharded(n_shards=2)
        try:
            with pytest.raises(ValueError, match="unknown external ids"):
                service.mark_deleted(np.array([10_000_000]))
            with pytest.raises(ValueError, match="cannot delete every"):
                service.mark_deleted(service.active_ids())
        finally:
            service.close()


class TestCrashContainment:
    def test_dead_shard_fails_requests_then_degrades(self, sharded_must, queries):
        service = sharded_must.serve_sharded(
            n_shards=2, max_batch=4, max_wait_ms=1.0, worker_timeout_s=20.0
        )
        plan = SearchOptions(k=8, exact=True)
        try:
            service.search(queries[0], plan)  # healthy round-trip first
            service._handles[1].process.kill()
            service._handles[1].process.join()
            with pytest.raises(ShardFailed):
                service.search(queries[1], plan)
            assert service.degraded
            assert service.live_shards == [0]
            # Subsequent requests serve from the survivor: every id is
            # one shard 0 owns (ext id ≡ 0 mod 2).
            res = service.search(queries[2], plan)
            assert len(res.ids) == 8
            assert np.all(res.ids % 2 == 0)
            graph = service.search(queries[3], SearchOptions(k=8, l=40))
            assert np.all(graph.ids % 2 == 0)
            assert service.stats.summary()["shards_lost"] == 1
        finally:
            service.close()

    def test_queued_wave_mates_error_individually(self, sharded_must, queries):
        """A crashed shard fails each in-flight future with ShardFailed;
        the dispatcher survives and later requests resolve."""
        service = ShardedService(
            sharded_must,
            n_shards=2,
            config=ServiceConfig(max_batch=8, max_wait_ms=1.0),
            start=False,
            worker_timeout_s=20.0,
        )
        plan = SearchOptions(k=5, exact=True)
        try:
            futures = [service.submit(q, plan) for q in queries[:4]]
            service._handles[1].process.kill()
            service._handles[1].process.join()
            service.start()
            for future in futures:
                with pytest.raises(ShardFailed):
                    future.result(timeout=30)
            # Dispatcher alive: fresh requests answer from the survivor.
            res = service.search(queries[4], plan)
            assert np.all(res.ids % 2 == 0)
        finally:
            service.close()


class TestSharedArrays:
    def test_round_trip_attach(self):
        rng = np.random.default_rng(3)
        arrays = {
            "plane0": rng.standard_normal((40, 16)).astype(np.float32),
            "ids": np.arange(40, dtype=np.int64),
            "empty": np.zeros((0, 8), dtype=np.float32),
        }
        pack = SharedArrays.create(arrays)
        attached = SharedArrays.attach(pack.spec)
        try:
            for key, value in arrays.items():
                assert np.array_equal(attached.arrays[key], value)
                assert attached.arrays[key].dtype == value.dtype
            with pytest.raises(ValueError):
                attached.arrays["ids"][0] = -1  # views are read-only
            for entry in pack.spec["entries"]:
                assert entry["offset"] % 64 == 0
            assert pack.nbytes >= sum(v.nbytes for v in arrays.values())
        finally:
            attached.close()
            pack.close()
            pack.unlink()

    def test_empty_pack_rejected_and_zero_rows_allowed(self):
        with pytest.raises(ValueError, match="at least one array"):
            SharedArrays.create({})
        pack = SharedArrays.create({"none": np.zeros((0, 4), np.float32)})
        attached = SharedArrays.attach(pack.spec)
        try:
            assert attached.arrays["none"].shape == (0, 4)
        finally:
            attached.close()
            pack.close()
            pack.unlink()

    def test_create_failure_unlinks_block(self, monkeypatch):
        """A failure while populating the block must not leak the named
        POSIX segment (it outlives the process otherwise)."""
        before = set(os.listdir("/dev/shm"))
        real_ndarray = np.ndarray
        calls = {"n": 0}

        def exploding(*args, **kwargs):
            # First view maps fine, second dies — mid-population, after
            # the named block exists.
            calls["n"] += 1
            if calls["n"] >= 2:
                raise RuntimeError("population boom")
            return real_ndarray(*args, **kwargs)

        monkeypatch.setattr(np, "ndarray", exploding)
        with pytest.raises(RuntimeError, match="population boom"):
            SharedArrays.create(
                {
                    "a": np.arange(8, dtype=np.int64),
                    "b": np.arange(8, dtype=np.int64),
                }
            )
        monkeypatch.undo()
        assert set(os.listdir("/dev/shm")) == before

    def test_spawn_failure_leaves_no_shm(self):
        """A worker that dies before its ready-ack (here: hard-exits in
        the graph build) must not leave shared-memory blocks behind —
        the spawn-failure path unlinks every pack it created."""
        must = _segmented_must(n=80, tail=20, seed=21)
        must.segments.builder = _DyingBuilder()
        before = set(os.listdir("/dev/shm"))
        with pytest.raises(Exception):
            ShardedService(must, n_shards=2)
        assert set(os.listdir("/dev/shm")) == before


class TestShardingHooks:
    """The ``SegmentedIndex`` surface the sharded tier is built on."""

    def _graph(self, n=40, seed=9):
        space = JointSpace(random_multivector_set(n, DIMS, seed=seed), WEIGHTS)
        return FusedIndexBuilder(gamma=8, seed=seed).build(space)

    def test_from_graph_explicit_ext_ids(self):
        index = self._graph()
        ids = np.arange(40, dtype=np.int64) * 2 + 1  # odd global ids
        seg = SegmentedIndex.from_graph(index, ext_ids=ids)
        view = seg.snapshot()
        res = view.exact_search(random_query(DIMS, seed=1), k=5)
        assert set(res.ids.tolist()) <= set(ids.tolist())
        # Allocator continues past the largest explicit id.
        new = seg.insert(random_multivector_set(3, DIMS, seed=2))
        assert new.min() > ids.max()

    def test_from_graph_ext_ids_validation(self):
        index = self._graph()
        with pytest.raises(ValueError, match="every graph row"):
            SegmentedIndex.from_graph(index, ext_ids=np.arange(5))
        with pytest.raises(ValueError, match="duplicates"):
            SegmentedIndex.from_graph(
                index, ext_ids=np.zeros(index.n, dtype=np.int64)
            )
        with pytest.raises(ValueError, match="non-negative"):
            SegmentedIndex.from_graph(
                index, ext_ids=np.arange(index.n) - 1
            )

    def test_insert_explicit_ext_ids(self):
        seg = SegmentedIndex.from_graph(self._graph())
        got = seg.insert(
            random_multivector_set(4, DIMS, seed=3),
            ext_ids=np.array([100, 205, 101, 300]),
        )
        assert np.array_equal(got, [100, 205, 101, 300])
        with pytest.raises(ValueError, match="collide"):
            seg.insert(
                random_multivector_set(2, DIMS, seed=4),
                ext_ids=np.array([205, 999]),
            )
        # The monotone allocator never reuses an explicit id.
        auto = seg.insert(random_multivector_set(2, DIMS, seed=5))
        assert auto.min() > 300

    def test_allow_empty_delete_and_empty_compact(self):
        seg = SegmentedIndex.from_graph(self._graph(n=20, seed=13))
        every = seg.active_ext_ids()
        with pytest.raises(ValueError, match="cannot delete every"):
            seg.mark_deleted(every)
        # A shard may lose its last object while the *global* corpus
        # stays non-empty; the front-end holds the global guard.
        seg.mark_deleted(every, allow_empty=True)
        assert seg.num_active == 0
        assert seg.compact().size == 0
        # The emptied shard stays usable: inserts restart it.
        seg.insert(random_multivector_set(3, DIMS, seed=14))
        assert seg.num_active == 3


class TestLifecycle:
    def test_snapshot_disabled_and_shard_stats(self, sharded_must):
        service = sharded_must.serve_sharded(n_shards=2)
        try:
            assert service.snapshot() is None
            stats = service.shard_stats()
            assert [s["shard"] for s in stats] == [0, 1]
            assert all(s["busy_seconds"] >= 0.0 for s in stats)
            total = sum(s["active"] for s in stats)
            assert total == sharded_must.segments.num_active
            service.search(random_query(DIMS, seed=0),
                           SearchOptions(k=5, exact=True))
            summary = service.stats.summary()
            assert set(summary["shards"]) == {0, 1}
        finally:
            service.close()

    def test_close_idempotent_and_rejects_after(self, sharded_must):
        service = sharded_must.serve_sharded(n_shards=2)
        service.close()
        service.close()
        from repro.service import ServiceClosed

        with pytest.raises(ServiceClosed):
            service.submit(random_query(DIMS, seed=0),
                           SearchOptions(k=3, exact=True))
