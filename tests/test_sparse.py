"""Sparse lexical plane unit suite: kernels, store lifecycle, engines.

The load-bearing contract is **three-way bit parity**: the per-document
reference loop (:func:`sparse_scores_reference`), the brute-force
per-term scan (:func:`sparse_scores_bruteforce`) and the posting-list
scatter engine (:func:`sparse_scores_inverted`) are deliberately
structured differently, yet must produce bit-identical float64 score
arrays — a bug shared by the two production paths cannot hide from the
reference.  On top of that:

* the store keeps rows in canonical CSR form, so scores are
  layout-independent — splitting the corpus into planes (with the
  global statistics stamped) changes no bits;
* ``local_stats`` is cached but the cache is invisible: re-wraps share
  it, subsets drop it, and the recomputed values are identical;
* the ``to_arrays``/``from_arrays`` npz codec round-trips rows, metric
  and stamped statistics exactly;
* degenerate inputs — empty vocabularies, all-zero rows, empty
  corpora, filters that eliminate every candidate — return empty (or
  all-zero) results instead of crashing, on **both** engines.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.framework import MUST
from repro.core.multivector import (
    MultiVector,
    MultiVectorSet,
    normalize_rows,
)
from repro.core.query import Eq, Query, SearchOptions
from repro.core.registry import (
    dense_score_rows,
    resolve_engine,
    resolve_metric,
    validate_metrics,
)
from repro.core.weights import Weights
from repro.sparse.inverted import (
    sparse_scores,
    sparse_scores_inverted,
    sparse_topk,
)
from repro.sparse.kernels import (
    SparseQuery,
    as_sparse_query,
    sparse_scores_bruteforce,
    sparse_scores_reference,
)
from repro.sparse.store import SparseStats, SparseStore, sum_stats

sp = pytest.importorskip("scipy.sparse")

METRICS = ("bm25", "tfidf")


def random_store(
    n: int = 80,
    vocab: int = 40,
    metric: str = "bm25",
    seed: int = 0,
    density: float = 0.15,
) -> SparseStore:
    """Integer term frequencies at roughly *density* — stats stay exact."""
    rng = np.random.default_rng(seed)
    mask = rng.random((n, vocab)) < density
    tfs = rng.integers(1, 6, size=(n, vocab)).astype(np.float32) * mask
    return SparseStore(sp.csr_matrix(tfs), metric=metric)


def random_sparse_query(
    vocab: int, seed: int = 0, terms: int = 6
) -> SparseQuery:
    rng = np.random.default_rng(seed)
    idx = rng.choice(vocab, size=min(terms, vocab), replace=False)
    val = rng.integers(1, 4, size=idx.size).astype(np.float64)
    return as_sparse_query((idx.astype(np.int64), val))


# ----------------------------------------------------------------------
# Query normalisation
# ----------------------------------------------------------------------
class TestSparseQuery:
    def test_canonical_form(self):
        q = as_sparse_query(([7, 3, 7, 5], [1.0, 2.0, 0.5, 0.0]))
        np.testing.assert_array_equal(q.indices, [3, 7])
        np.testing.assert_array_equal(q.values, [2.0, 1.5])

    def test_mapping_and_pair_forms_agree(self):
        a = as_sparse_query({3: 2.0, 9: 1.0})
        b = as_sparse_query(([9, 3], [1.0, 2.0]))
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_array_equal(a.values, b.values)

    def test_idempotent_on_sparse_query(self):
        q = as_sparse_query({1: 1.0})
        assert as_sparse_query(q) is q

    def test_rejections(self):
        with pytest.raises(ValueError, match="non-negative"):
            as_sparse_query(([1], [-1.0]))
        with pytest.raises(ValueError, match="weights"):
            as_sparse_query(([1, 2], [1.0]))
        with pytest.raises(ValueError, match="non-negative"):
            as_sparse_query(([-2], [1.0]))
        with pytest.raises(ValueError, match="sparse query"):
            as_sparse_query([1, 2, 3])  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# Three-way scorer parity
# ----------------------------------------------------------------------
class TestKernelParity:
    @pytest.mark.parametrize("metric", METRICS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_three_scorers_bitwise(self, metric, seed):
        store = random_store(metric=metric, seed=seed)
        query = random_sparse_query(store.vocab, seed=seed + 10)
        ref = sparse_scores_reference(store, query)
        brute = sparse_scores_bruteforce(store, query)
        scatter, touched = sparse_scores_inverted(store, query)
        np.testing.assert_array_equal(ref, brute)
        np.testing.assert_array_equal(brute, scatter)
        # untouched rows score *exactly* +0.0 — the top-k shortcut's
        # soundness condition.
        untouched = np.setdiff1d(np.arange(store.n), touched)
        assert np.all(scatter[untouched] == 0.0)
        assert np.all(np.diff(touched) > 0)  # sorted unique

    @pytest.mark.parametrize("metric", METRICS)
    def test_engine_selector_same_bits(self, metric):
        store = random_store(metric=metric, seed=4)
        query = random_sparse_query(store.vocab, seed=5)
        auto = sparse_scores(store, query, "auto")
        inv = sparse_scores(store, query, "inverted")
        exact = sparse_scores(store, query, "exact")
        np.testing.assert_array_equal(auto, inv)
        np.testing.assert_array_equal(inv, exact)
        with pytest.raises(ValueError, match="unknown sparse engine"):
            sparse_scores(store, query, "bogus")

    def test_out_of_vocabulary_terms_drop(self):
        store = random_store(seed=6)
        query = random_sparse_query(store.vocab, seed=7)
        widened = as_sparse_query(
            (
                np.concatenate([query.indices, [store.vocab + 3]]),
                np.concatenate([query.values, [5.0]]),
            )
        )
        np.testing.assert_array_equal(
            sparse_scores_bruteforce(store, query),
            sparse_scores_bruteforce(store, widened),
        )

    @pytest.mark.parametrize("k", [3, 10, 200])
    def test_topk_touched_shortcut_equals_lexsort(self, k):
        store = random_store(n=60, seed=8)
        query = random_sparse_query(store.vocab, seed=9, terms=3)
        scores, touched = sparse_scores_inverted(store, query)
        full_ids, full_scores = sparse_topk(scores, k)
        fast_ids, fast_scores = sparse_topk(scores, k, touched=touched)
        np.testing.assert_array_equal(full_ids, fast_ids)
        np.testing.assert_array_equal(full_scores, fast_scores)

    def test_topk_admissible_mask(self):
        store = random_store(n=50, seed=10)
        query = random_sparse_query(store.vocab, seed=11)
        scores, touched = sparse_scores_inverted(store, query)
        admissible = np.zeros(store.n, dtype=bool)
        admissible[::2] = True
        full_ids, _ = sparse_topk(scores, 8, admissible)
        fast_ids, _ = sparse_topk(scores, 8, admissible, touched)
        np.testing.assert_array_equal(full_ids, fast_ids)
        assert np.all(full_ids % 2 == 0)


# ----------------------------------------------------------------------
# Store lifecycle: canonical form, layout parity, stats cache, codecs
# ----------------------------------------------------------------------
class TestStoreLifecycle:
    def test_canonicalisation(self):
        # duplicate columns summed, explicit zeros dropped, indices sorted
        coo = sp.coo_matrix(
            (
                np.array([1.0, 2.0, 0.0, 3.0], dtype=np.float32),
                (np.array([0, 0, 1, 0]), np.array([4, 4, 2, 1])),
            ),
            shape=(2, 6),
        )
        store = SparseStore(coo)
        assert store.nnz == 2  # (0,4)=3 summed, (1,2)=0 eliminated
        row = store.csr.getrow(0)
        np.testing.assert_array_equal(row.indices, [1, 4])
        np.testing.assert_array_equal(row.data, [3.0, 3.0])

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError, match="finite and non-negative"):
            SparseStore(sp.csr_matrix(np.array([[-1.0, 0.0]])))
        with pytest.raises(ValueError, match="scipy.sparse matrix"):
            SparseStore(np.zeros((2, 2)))  # type: ignore[arg-type]
        with pytest.raises(ValueError):
            SparseStore(sp.csr_matrix((1, 1)), metric="ip")

    @pytest.mark.parametrize("metric", METRICS)
    def test_layout_independence(self, metric):
        """Splitting into stamped planes changes no score bits."""
        whole = random_store(n=90, metric=metric, seed=12)
        query = random_sparse_query(whole.vocab, seed=13)
        expect = sparse_scores_bruteforce(whole, query)

        cuts = [(0, 25), (25, 60), (60, 90)]
        parts = [whole.subset(np.arange(lo, hi)) for lo, hi in cuts]
        stats = sum_stats([p.local_stats() for p in parts])
        assert stats.key() == whole.local_stats().key()  # integer tfs

        for (lo, hi), part in zip(cuts, parts):
            stamped = part.with_stats(stats)
            np.testing.assert_array_equal(
                sparse_scores_bruteforce(stamped, query), expect[lo:hi]
            )
        merged = SparseStore.concat(parts, stats=stats)
        np.testing.assert_array_equal(
            sparse_scores_bruteforce(merged, query), expect
        )

    def test_subset_preserves_order_and_stats(self):
        store = random_store(seed=14)
        stats = store.local_stats()
        stamped = store.with_stats(stats)
        ids = np.array([5, 2, 2, 40])
        sub = stamped.subset(ids)
        assert sub.n == 4
        assert sub.stamped_stats is stats
        np.testing.assert_array_equal(
            sub.csr.toarray(), store.csr.toarray()[ids]
        )

    def test_local_stats_cache_is_invisible(self):
        store = random_store(seed=15)
        first = store.local_stats()
        assert store.local_stats() is first  # cached
        rewrap = store.with_stats(None)
        assert rewrap.local_stats() is first  # shared across re-wraps
        sub = store.subset(np.arange(10))
        fresh = random_store(seed=15).subset(np.arange(10)).local_stats()
        assert sub.local_stats().key() == fresh.key()

    def test_stats_fallback_and_stamp(self):
        store = random_store(seed=16)
        assert store.stamped_stats is None
        assert store.stats.key() == store.local_stats().key()
        foreign = SparseStats(
            n_docs=1000,
            doc_freq=np.ones(store.vocab, dtype=np.int64),
            total_len=5000.0,
        )
        assert store.with_stats(foreign).stats is foreign

    def test_avgdl_floor(self):
        empty = SparseStats(0, np.zeros(3, dtype=np.int64), 0.0)
        assert empty.avgdl == 1.0

    def test_sum_stats_vocab_mismatch(self):
        a = random_store(vocab=10, seed=17).local_stats()
        b = random_store(vocab=11, seed=18).local_stats()
        with pytest.raises(ValueError, match="vocabularies"):
            sum_stats([a, b])

    def test_concat_mismatches_rejected(self):
        a = random_store(vocab=10, seed=19)
        with pytest.raises(ValueError, match="vocabulary"):
            SparseStore.concat([a, random_store(vocab=12, seed=20)])
        with pytest.raises(ValueError, match="metric"):
            SparseStore.concat(
                [a, random_store(vocab=10, metric="tfidf", seed=21)]
            )

    @pytest.mark.parametrize("metric", METRICS)
    def test_npz_roundtrip_bitwise(self, tmp_path, metric):
        store = random_store(metric=metric, seed=22).with_stats(
            random_store(n=200, metric=metric, seed=23).local_stats()
        )
        path = tmp_path / "plane.npz"
        np.savez(path, **store.to_arrays())
        with np.load(path, allow_pickle=False) as arrays:
            loaded = SparseStore.from_arrays(dict(arrays.items()))
        assert loaded is not None
        assert loaded.metric == metric
        assert loaded.stats.key() == store.stats.key()
        query = random_sparse_query(store.vocab, seed=24)
        np.testing.assert_array_equal(
            sparse_scores_bruteforce(loaded, query),
            sparse_scores_bruteforce(store, query),
        )

    def test_from_arrays_absent_keys(self):
        assert SparseStore.from_arrays({"other": np.zeros(1)}) is None

    def test_byte_accounting(self):
        store = random_store(seed=25)
        assert store.cold_bytes() == 0
        bare = store.hot_bytes()
        stamped = store.with_stats(store.local_stats())
        assert stamped.hot_bytes() > bare


# ----------------------------------------------------------------------
# Degenerate corpora (satellite: must return empty, never crash)
# ----------------------------------------------------------------------
class TestEdgeCases:
    @pytest.mark.parametrize("engine", ["inverted", "exact"])
    def test_empty_vocabulary_corpus(self, engine):
        store = SparseStore(sp.csr_matrix((5, 0), dtype=np.float32))
        query = as_sparse_query(([3], [1.0]))  # out-of-vocab by definition
        scores = sparse_scores(store, query, engine)
        assert np.all(scores == 0.0)
        ids, top = sparse_topk(scores, 3)
        np.testing.assert_array_equal(ids, [0, 1, 2])  # zero-tie → asc id
        assert np.all(top == 0.0)

    @pytest.mark.parametrize("engine", ["inverted", "exact"])
    def test_all_zero_rows(self, engine):
        store = SparseStore.from_rows([{}, {}, {2: 1.0}, {}], vocab=4)
        assert store.nnz == 1
        query = as_sparse_query({2: 1.0})
        scores = sparse_scores(store, query, engine)
        assert scores[2] > 0.0
        assert np.all(scores[[0, 1, 3]] == 0.0)
        _, touched = sparse_scores_inverted(store, query)
        np.testing.assert_array_equal(touched, [2])
        ids, _ = sparse_topk(scores, 3, touched=touched)
        np.testing.assert_array_equal(ids, [2, 0, 1])  # zero back-fill asc

    @pytest.mark.parametrize("engine", ["inverted", "exact"])
    def test_empty_corpus(self, engine):
        store = SparseStore.empty(vocab=8)
        query = random_sparse_query(8, seed=26)
        scores = sparse_scores(store, query, engine)
        assert scores.shape == (0,)
        ids, top = sparse_topk(scores, 5)
        assert ids.size == 0 and top.size == 0

    @pytest.mark.parametrize("engine", ["inverted", "exact"])
    def test_empty_query(self, engine):
        store = random_store(seed=27)
        scores = sparse_scores(store, as_sparse_query({}), engine)
        assert np.all(scores == 0.0)

    def test_topk_admissible_eliminates_everything(self):
        store = random_store(n=20, seed=28)
        query = random_sparse_query(store.vocab, seed=29)
        scores, touched = sparse_scores_inverted(store, query)
        nothing = np.zeros(store.n, dtype=bool)
        for t in (None, touched):
            ids, top = sparse_topk(scores, 5, nothing, t)
            assert ids.size == 0 and top.size == 0

    @pytest.mark.parametrize("engine", ["inverted", "exact"])
    @pytest.mark.parametrize("exact_plan", [False, True])
    def test_filter_eliminates_every_candidate(self, engine, exact_plan):
        """End-to-end: a hybrid query whose filter admits nothing must
        return an empty result — not crash — on both sparse engines and
        both search plans."""
        rng = np.random.default_rng(30)
        n = 40
        dense = normalize_rows(
            rng.standard_normal((n, 12)).astype(np.float32)
        )
        sparse = random_store(n=n, vocab=16, seed=31)
        objects = MultiVectorSet([dense], sparse=sparse).set_attributes(
            {"category": np.array(["kept"] * n)}
        )
        must = MUST(objects, weights=Weights([1.0])).build()
        query = Query(
            MultiVector.from_arrays([dense[0]]),
            sparse=random_sparse_query(16, seed=32),
            filter=Eq("category", "nope"),
        )
        res = must.query(
            query,
            SearchOptions(
                k=5, l=20, exact=exact_plan, sparse_engine=engine
            ),
        )
        assert res.ids.size == 0
        assert res.similarities.size == 0


# ----------------------------------------------------------------------
# Registry (metric/engine tables + dense fallback kernels)
# ----------------------------------------------------------------------
class TestRegistry:
    def test_metric_did_you_mean(self):
        with pytest.raises(ValueError, match="cosine"):
            resolve_metric("cosin")
        with pytest.raises(ValueError, match="bm25"):
            resolve_metric("bm52")

    def test_metric_kind_mismatch(self):
        with pytest.raises(ValueError, match="dense metric"):
            resolve_metric("bm25", kind="dense")
        with pytest.raises(ValueError, match="sparse metric"):
            resolve_metric("l2", kind="sparse")

    def test_engine_did_you_mean(self):
        with pytest.raises(ValueError, match="inverted"):
            resolve_engine("invrted", kind="sparse")
        assert resolve_engine("inverted", kind="sparse").kind == "sparse"

    def test_validate_metrics_count(self):
        assert validate_metrics(["ip", "cosine"], 2) == ("ip", "cosine")
        with pytest.raises(ValueError, match="2 dense modalities"):
            validate_metrics(["ip"], 2)
        with pytest.raises(ValueError, match="dense metric"):
            validate_metrics(["bm25"], 1)  # sparse metric in dense slot

    def test_dense_fallback_kernels(self):
        rng = np.random.default_rng(33)
        rows = rng.standard_normal((10, 6))
        q = rng.standard_normal(6)
        cos = dense_score_rows("cosine", q, rows)
        l2 = dense_score_rows("l2", q, rows)
        expect_cos = (rows @ q) / (
            np.linalg.norm(rows, axis=1) * np.linalg.norm(q)
        )
        np.testing.assert_allclose(cos, expect_cos, rtol=1e-12)
        np.testing.assert_allclose(
            l2, -np.sum((rows - q) ** 2, axis=1), rtol=1e-12
        )
        with pytest.raises(ValueError, match="legacy path"):
            dense_score_rows("ip", q, rows)

    def test_cosine_zero_row_safe(self):
        rows = np.zeros((2, 4))
        scores = dense_score_rows("cosine", np.ones(4), rows)
        assert np.all(scores == 0.0)
