"""Unit suite for the pluggable vector-store layer (``repro.store``).

Covers every backend's contract in isolation: kernel/decode agreement,
batched waves, subsetting, byte accounting, serialisation round-trips,
and the actionable errors for unknown kinds/dtypes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.multivector import normalize_rows
from repro.store import (
    STORE_KINDS,
    DenseStore,
    HalfStore,
    PQStore,
    ScalarQuantStore,
    make_store,
    store_from_arrays,
)
from repro.utils.rng import make_rng

DIMS = (20, 9)
N = 300

#: worst-case |kernel − exact float32| inner-product error per backend on
#: unit-norm data; dense is bit-exact, the rest bound their quantisation.
SCORE_ATOL = {"none": 0.0, "float16": 2e-3, "int8": 0.05, "pq": 0.9}


def _matrices(seed: int = 3) -> list[np.ndarray]:
    rng = make_rng(seed)
    return [
        normalize_rows(rng.standard_normal((N, d)).astype(np.float32))
        for d in DIMS
    ]


def _query(seed: int = 11) -> np.ndarray:
    rng = make_rng(seed)
    v = rng.standard_normal(DIMS[0]).astype(np.float32)
    return v / np.linalg.norm(v)


@pytest.fixture(scope="module")
def mats():
    return _matrices()


@pytest.fixture(scope="module", params=sorted(STORE_KINDS))
def store(request, mats):
    return make_store(request.param, mats)


class TestStoreContract:
    def test_registry_covers_all_backends(self):
        assert STORE_KINDS == {
            "none": DenseStore,
            "float16": HalfStore,
            "int8": ScalarQuantStore,
            "pq": PQStore,
        }

    def test_shapes(self, store, mats):
        assert store.n == N
        assert store.dims == DIMS
        assert store.num_modalities == len(DIMS)

    def test_kernel_matches_exact_within_tolerance(self, store, mats):
        q = _query()
        scores = store.query_kernel(0, q).all()
        exact = mats[0] @ q
        assert scores.shape == (N,)
        np.testing.assert_allclose(
            scores, exact, atol=max(SCORE_ATOL[store.kind], 1e-12)
        )

    def test_kernel_ids_is_a_gather_of_all(self, store):
        q = _query()
        kernel = store.query_kernel(0, q)
        ids = np.asarray([0, 17, 5, N - 1, 17])
        np.testing.assert_allclose(
            kernel.ids(ids), kernel.all()[ids], rtol=1e-6, atol=1e-6
        )

    def test_kernel_agrees_with_decoded_matrix(self, store):
        """Asymmetric scoring must equal the inner product with the
        reconstruction — the ADC/affine identities, not an approximation
        of them."""
        q = _query()
        np.testing.assert_allclose(
            store.query_kernel(0, q).all(),
            store.modality(0) @ q,
            rtol=1e-4,
            atol=2e-5,
        )

    def test_batch_scores_matches_per_query_kernels(self, store):
        rng = make_rng(29)
        queries = normalize_rows(
            rng.standard_normal((5, DIMS[1])).astype(np.float32)
        )
        block = store.batch_scores(1, queries)
        assert block.shape == (N, 5)
        ref = np.stack(
            [store.query_kernel(1, q).all() for q in queries], axis=1
        )
        np.testing.assert_allclose(block, ref, rtol=1e-4, atol=1e-5)

    def test_subset_keeps_codes(self, store):
        ids = np.asarray([4, 99, 4, 250])
        sub = store.subset(ids)
        assert sub.n == 4 and sub.dims == DIMS
        q = _query()
        np.testing.assert_allclose(
            sub.query_kernel(0, q).all(),
            store.query_kernel(0, q).ids(ids),
            rtol=1e-6,
            atol=1e-6,
        )

    def test_exact_tier_present_by_default(self, store, mats):
        assert store.has_exact
        for i, mat in enumerate(mats):
            np.testing.assert_array_equal(store.exact_modality(i), mat)
        ids = np.asarray([1, 30])
        np.testing.assert_array_equal(store.exact_rows(0, ids), mats[0][ids])

    def test_roundtrip_through_arrays(self, store):
        rebuilt = store_from_arrays(store.store_meta(), store.to_arrays())
        assert rebuilt.kind == store.kind
        assert rebuilt.n == store.n and rebuilt.dims == store.dims
        q = _query()
        np.testing.assert_array_equal(
            rebuilt.query_kernel(0, q).all(), store.query_kernel(0, q).all()
        )
        assert rebuilt.has_exact == store.has_exact


class TestCompressionRatios:
    def test_hot_bytes_shrink(self, mats):
        dense = sum(m.nbytes for m in mats)
        assert make_store("none", mats).hot_bytes() == dense
        assert make_store("float16", mats).hot_bytes() * 2 == dense
        assert make_store("int8", mats).hot_bytes() * 3 < dense

    def test_pq_codebooks_amortise_with_scale(self):
        """PQ codes are d/pq_dims bytes per row; the fixed codebook cost
        fades once the corpus outgrows ~256 rows per subspace."""
        rng = make_rng(13)
        mat = normalize_rows(
            rng.standard_normal((4000, 24)).astype(np.float32)
        )
        pq = make_store("pq", [mat])
        assert pq.hot_bytes() * 3 < mat.nbytes

    def test_cold_tier_accounting(self, mats):
        dense = sum(m.nbytes for m in mats)
        with_cold = make_store("int8", mats)
        without = make_store("int8", mats, keep_exact=False)
        assert with_cold.cold_bytes() == dense
        assert without.cold_bytes() == 0
        assert not without.has_exact
        # Without a cold tier, the exact accessor degrades to decode.
        np.testing.assert_allclose(
            without.exact_modality(0), without.modality(0)
        )


class TestQuantisationQuality:
    def test_sq_reconstruction_error_bounded_by_step(self, mats):
        store = make_store("int8", mats)
        for i, mat in enumerate(mats):
            err = np.abs(store.modality(i) - mat)
            span = mat.max(axis=0) - mat.min(axis=0)
            assert np.all(err <= span / 255.0 * 0.5 + 1e-6)

    def test_sq_constant_column_is_exact(self):
        mat = np.ones((50, 4), dtype=np.float32)
        mat[:, 1] = -0.25
        store = make_store("int8", [mat])
        np.testing.assert_allclose(store.modality(0), mat, atol=1e-7)

    def test_pq_training_is_deterministic(self, mats):
        a = make_store("pq", mats, seed=5)
        b = make_store("pq", mats, seed=5)
        q = _query()
        np.testing.assert_array_equal(
            a.query_kernel(0, q).all(), b.query_kernel(0, q).all()
        )

    def test_pq_ragged_dims_are_padded(self):
        rng = make_rng(8)
        mat = normalize_rows(rng.standard_normal((80, 7)).astype(np.float32))
        store = make_store("pq", [mat], pq_dims=4)
        assert store.dims == (7,)
        q = rng.standard_normal(7).astype(np.float32)
        np.testing.assert_allclose(
            store.query_kernel(0, q).all(), store.modality(0) @ q,
            rtol=1e-4, atol=1e-5,
        )

    def test_pq_small_corpus_caps_centroids(self):
        rng = make_rng(9)
        mat = normalize_rows(rng.standard_normal((20, 8)).astype(np.float32))
        store = make_store("pq", [mat])
        # 20 < 256 ⇒ one centroid per row is available: lossless codes.
        np.testing.assert_allclose(store.modality(0), mat, atol=1e-5)


class TestFormatValidation:
    def test_unknown_kind_is_actionable(self, mats):
        with pytest.raises(ValueError, match="only supports"):
            store_from_arrays({"kind": "opq", "dtype": "uint8"}, {})
        with pytest.raises(ValueError, match="unknown vector-store kind"):
            make_store("opq", mats)

    def test_dtype_mismatch_is_actionable(self, mats):
        store = make_store("int8", mats)
        meta = store.store_meta()
        meta["dtype"] = "uint16"
        with pytest.raises(ValueError, match="incompatible format"):
            store_from_arrays(meta, store.to_arrays())

    def test_unexpected_options_rejected(self, mats):
        for kind in STORE_KINDS:
            with pytest.raises(ValueError):
                make_store(kind, mats, bogus_option=1)
