"""Unit tests for repro.utils (rng, topk, validation, io)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.utils.io import (
    load_arrays,
    pack_adjacency,
    save_arrays,
    unpack_adjacency,
)
from repro.utils.rng import derive_seed, make_rng, spawn
from repro.utils.topk import merge_top_k, top_k_indices, top_k_sorted
from repro.utils.validation import (
    as_float_matrix,
    as_float_vector,
    check_normalized,
    require,
)


class TestRng:
    def test_make_rng_from_int_is_deterministic(self):
        assert make_rng(7).integers(1000) == make_rng(7).integers(1000)

    def test_make_rng_passthrough_generator(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen

    def test_make_rng_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_derive_seed_is_stable(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_derive_seed_differs_by_label(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_derive_seed_differs_by_base(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_derive_seed_label_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_spawn_streams_are_independent(self):
        a = spawn(3, "x").standard_normal(4)
        b = spawn(3, "y").standard_normal(4)
        assert not np.allclose(a, b)

    @given(st.integers(min_value=0, max_value=2**32))
    def test_derive_seed_in_range(self, base):
        seed = derive_seed(base, "label")
        assert 0 <= seed < 2**63


class TestTopK:
    def test_top_k_indices_small_k(self):
        scores = np.array([0.1, 0.9, 0.5, 0.7])
        assert set(top_k_indices(scores, 2)) == {1, 3}

    def test_top_k_indices_k_ge_n(self):
        scores = np.array([0.1, 0.9])
        assert set(top_k_indices(scores, 5)) == {0, 1}

    def test_top_k_indices_k_zero(self):
        assert top_k_indices(np.array([1.0, 2.0]), 0).size == 0

    def test_top_k_sorted_descending(self):
        scores = np.array([0.3, 0.9, 0.5])
        assert list(top_k_sorted(scores, 3)) == [1, 2, 0]

    def test_top_k_sorted_tie_broken_by_index(self):
        scores = np.array([0.5, 0.9, 0.5])
        assert list(top_k_sorted(scores, 3)) == [1, 0, 2]

    @given(
        hnp.arrays(
            np.float64,
            st.integers(1, 60),
            elements=st.floats(-1, 1, allow_nan=False),
        ),
        st.integers(1, 20),
    )
    def test_top_k_sorted_matches_argsort(self, scores, k):
        got = top_k_sorted(scores, k)
        want = np.lexsort((np.arange(len(scores)), -scores))[:k]
        # The score multiset must be the true top-k (ties at the boundary
        # may select different indices), and ordering must be descending.
        assert np.allclose(np.sort(scores[got]), np.sort(scores[want]))
        assert list(scores[got]) == sorted(scores[got], reverse=True)
        assert len(set(got.tolist())) == len(got)

    def test_merge_top_k_dedup_takes_best_score(self):
        ids, scores = merge_top_k(
            np.array([1, 2]), np.array([0.5, 0.4]),
            np.array([2, 3]), np.array([0.9, 0.1]),
            k=3,
        )
        assert list(ids) == [2, 1, 3]
        assert scores[0] == pytest.approx(0.9)

    def test_merge_top_k_respects_k(self):
        ids, _ = merge_top_k(
            np.arange(5), np.linspace(1, 0.5, 5),
            np.arange(5, 10), np.linspace(0.4, 0.1, 5),
            k=3,
        )
        assert len(ids) == 3


class TestValidation:
    def test_require_passes(self):
        require(True, "never")

    def test_require_raises(self):
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")

    def test_as_float_matrix_coerces(self):
        out = as_float_matrix([[1, 2], [3, 4]])
        assert out.dtype == np.float32 and out.shape == (2, 2)

    def test_as_float_matrix_rejects_1d(self):
        with pytest.raises(ValueError):
            as_float_matrix(np.zeros(3))

    def test_as_float_vector_rejects_2d(self):
        with pytest.raises(ValueError):
            as_float_vector(np.zeros((2, 2)))

    def test_check_normalized(self):
        mat = np.eye(3, dtype=np.float32)
        assert check_normalized(mat)
        assert not check_normalized(2 * mat)


class TestIo:
    def test_pack_unpack_roundtrip(self):
        adj = [np.array([1, 2], dtype=np.int32),
               np.array([], dtype=np.int32),
               np.array([0], dtype=np.int32)]
        flat, offsets = pack_adjacency(adj)
        back = unpack_adjacency(flat, offsets)
        assert len(back) == 3
        for a, b in zip(adj, back):
            assert np.array_equal(a, b)

    def test_pack_empty_adjacency(self):
        flat, offsets = pack_adjacency([np.array([], dtype=np.int32)])
        assert flat.size == 0 and list(offsets) == [0, 0]

    def test_save_load_arrays(self, tmp_path):
        path = tmp_path / "blob.npz"
        save_arrays(path, {"k": 1, "name": "x"}, data=np.arange(5))
        meta, arrays = load_arrays(path)
        assert meta == {"k": 1, "name": "x"}
        assert np.array_equal(arrays["data"], np.arange(5))

    def test_save_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "a" / "b" / "c.npz"
        save_arrays(path, {}, x=np.zeros(2))
        assert path.exists()
