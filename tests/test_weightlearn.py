"""Tests for vector weight learning (§VI): loss, gradient, mining, trainer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.multivector import MultiVector, MultiVectorSet
from repro.weightlearn import (
    VectorWeightLearner,
    build_features,
    contrastive_loss_and_grad,
    joint_logits,
    mine_hard_negatives,
    sample_random_negatives,
)

from tests.conftest import random_multivector_set


class TestLoss:
    def test_perfect_separation_low_loss(self):
        # Positive IP 1.0 in both modalities, negatives 0 → tiny loss.
        features = np.zeros((4, 3, 2))
        features[:, 0, :] = 1.0
        loss, _ = contrastive_loss_and_grad(10 * features, np.ones(2))
        assert loss < 0.01

    def test_uninformative_features_loss_is_log_c(self):
        features = np.ones((4, 5, 2)) * 0.5
        loss, grad = contrastive_loss_and_grad(features, np.ones(2))
        assert loss == pytest.approx(np.log(5), abs=1e-6)
        assert np.allclose(grad, 0.0, atol=1e-9)

    def test_joint_logits_lemma1(self):
        features = np.random.default_rng(0).random((2, 3, 4))
        omegas = np.array([0.5, 1.0, 2.0, 0.1])
        logits = joint_logits(features, omegas)
        assert np.allclose(logits, features @ omegas**2)

    @settings(deadline=None, max_examples=30)
    @given(
        hnp.arrays(np.float64, (3, 4, 2), elements=st.floats(-1, 1)),
        st.floats(0.1, 2.0), st.floats(0.1, 2.0),
    )
    def test_gradient_matches_finite_differences(self, features, w0, w1):
        """The analytic gradient is exact (DESIGN.md §2 substitution)."""
        omegas = np.array([w0, w1])
        loss, grad = contrastive_loss_and_grad(features, omegas)
        eps = 1e-6
        for i in range(2):
            step = np.zeros(2)
            step[i] = eps
            up, _ = contrastive_loss_and_grad(features, omegas + step)
            down, _ = contrastive_loss_and_grad(features, omegas - step)
            numeric = (up - down) / (2 * eps)
            assert grad[i] == pytest.approx(numeric, rel=1e-3, abs=1e-5)

    def test_invalid_shapes(self):
        with pytest.raises(ValueError):
            contrastive_loss_and_grad(np.zeros((2, 3)), np.ones(2))


class TestNegativeMining:
    @pytest.fixture()
    def sims(self):
        rng = np.random.default_rng(4)
        return rng.random((2, 6, 30))  # m=2, B=6, P=30

    def test_hard_negatives_exclude_positive(self, sims):
        positives = np.arange(6)
        negs = mine_hard_negatives(sims, positives, np.ones(2), 5)
        for b in range(6):
            assert positives[b] not in negs[b]

    def test_hard_negatives_are_hardest(self, sims):
        positives = np.zeros(6, dtype=np.int64)
        negs = mine_hard_negatives(sims, positives, np.ones(2), 3)
        joint = np.tensordot(np.ones(2), sims, axes=1)
        for b in range(6):
            scores = joint[b].copy()
            scores[0] = -np.inf
            expected = set(np.argsort(-scores)[:3].tolist())
            assert set(negs[b].tolist()) == expected

    def test_hard_negatives_depend_on_weights(self, sims):
        positives = np.zeros(6, dtype=np.int64)
        a = mine_hard_negatives(sims, positives, np.array([1.0, 0.01]), 3)
        b = mine_hard_negatives(sims, positives, np.array([0.01, 1.0]), 3)
        assert not np.array_equal(a, b)

    def test_random_negatives_exclude_positive(self):
        positives = np.array([3, 7, 11])
        negs = sample_random_negatives(20, positives, 8, rng=0)
        for b in range(3):
            assert positives[b] not in negs[b]

    def test_pool_too_small(self, sims):
        with pytest.raises(ValueError):
            mine_hard_negatives(sims, np.zeros(6, dtype=np.int64), np.ones(2), 30)

    def test_build_features_layout(self, sims):
        positives = np.arange(6)
        negs = mine_hard_negatives(sims, positives, np.ones(2), 4)
        feats = build_features(sims, positives, negs)
        assert feats.shape == (6, 5, 2)
        for b in range(6):
            assert np.allclose(feats[b, 0], sims[:, b, positives[b]])
            assert np.allclose(feats[b, 1], sims[:, b, negs[b, 0]])


def _make_training_problem(seed=0, n=150, batch=40, noise=0.12):
    """Synthetic problem whose optimal weights favour modality 1.

    Modality 0 is pure noise; modality 1 places the positive closest to
    the anchor (up to small *noise*, kept low enough that the problem is
    winnable — the contrastive loss deliberately flattens logits on
    unwinnable anchors, which would mask what these tests check).
    A correct learner must push ω₁ ≫ ω₀.
    """
    rng = np.random.default_rng(seed)
    d0, d1 = 6, 6
    pool0 = rng.standard_normal((n, d0)).astype(np.float32)
    pool1 = rng.standard_normal((n, d1)).astype(np.float32)
    pool0 /= np.linalg.norm(pool0, axis=1, keepdims=True)
    pool1 /= np.linalg.norm(pool1, axis=1, keepdims=True)
    pool = MultiVectorSet([pool0, pool1])
    anchors, positives = [], []
    for b in range(batch):
        pos = int(rng.integers(n))
        a0 = rng.standard_normal(d0)  # noise — unrelated to pos
        a1 = pool1[pos] + noise * rng.standard_normal(d1)  # informative
        a0 /= np.linalg.norm(a0)
        a1 /= np.linalg.norm(a1)
        anchors.append(MultiVector((a0.astype(np.float32),
                                    a1.astype(np.float32))))
        positives.append(pos)
    return anchors, np.asarray(positives), pool


class TestTrainer:
    def test_learns_informative_modality(self):
        anchors, positives, pool = _make_training_problem()
        learner = VectorWeightLearner(epochs=150, learning_rate=0.3, seed=1)
        result = learner.fit(anchors, positives, pool)
        w2 = result.weights.squared
        assert w2[1] > 2 * w2[0], f"learned {w2}"

    def test_training_recall_improves(self):
        anchors, positives, pool = _make_training_problem()
        learner = VectorWeightLearner(epochs=150, learning_rate=0.3, seed=1)
        result = learner.fit(anchors, positives, pool)
        assert result.history.recall[-1] >= result.history.recall[0]
        assert result.history.recall[-1] > 0.6

    def test_hard_beats_random_on_final_recall(self):
        """Fig. 9 shape: hard negatives reach better weights."""
        anchors, positives, pool = _make_training_problem(seed=3)
        final = {}
        for strategy in ("hard", "random"):
            learner = VectorWeightLearner(
                epochs=120, learning_rate=0.3, strategy=strategy, seed=1
            )
            final[strategy] = learner.fit(
                anchors, positives, pool
            ).history.recall[-1]
        assert final["hard"] >= final["random"] - 0.05

    def test_normalized_weights_unit_total(self):
        anchors, positives, pool = _make_training_problem()
        result = VectorWeightLearner(epochs=20, seed=1).fit(
            anchors, positives, pool
        )
        assert result.weights.total == pytest.approx(1.0, abs=1e-6)

    def test_history_lengths(self):
        anchors, positives, pool = _make_training_problem()
        result = VectorWeightLearner(epochs=25, seed=1).fit(
            anchors, positives, pool
        )
        assert len(result.history.loss) == 25
        assert len(result.history.recall) == 25
        assert len(result.history.squared_weights) == 25
        assert result.epochs == 25
        assert result.seconds > 0

    def test_deterministic(self):
        anchors, positives, pool = _make_training_problem()
        r1 = VectorWeightLearner(epochs=30, seed=9).fit(anchors, positives, pool)
        r2 = VectorWeightLearner(epochs=30, seed=9).fit(anchors, positives, pool)
        assert np.allclose(r1.weights.squared, r2.weights.squared)

    def test_missing_modality_anchor_gets_zero_feature(self):
        anchors, positives, pool = _make_training_problem()
        anchors = [a.replace(0, None) for a in anchors]
        result = VectorWeightLearner(epochs=50, learning_rate=0.3, seed=1).fit(
            anchors, positives, pool
        )
        # With modality 0 absent everywhere its IPs are all zero, so the
        # gradient pushes all discriminative mass to modality 1.
        assert result.weights.squared[1] > result.weights.squared[0]

    def test_invalid_inputs(self):
        anchors, positives, pool = _make_training_problem()
        with pytest.raises(ValueError):
            VectorWeightLearner(strategy="weird")
        with pytest.raises(ValueError):
            VectorWeightLearner(epochs=0)
        with pytest.raises(ValueError):
            VectorWeightLearner().fit(anchors, positives[:3], pool)
        with pytest.raises(ValueError):
            VectorWeightLearner().fit([], np.array([]), pool)

    def test_num_negatives_sweep_trains(self):
        """Fig. 13: the learner works across |N⁻| settings."""
        anchors, positives, pool = _make_training_problem()
        for num_neg in (1, 4, 10):
            result = VectorWeightLearner(
                epochs=40, num_negatives=num_neg, seed=1
            ).fit(anchors, positives, pool)
            assert np.isfinite(result.history.loss[-1])
